#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sgxo {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }
double OnlineStats::max() const { return max_; }

double OnlineStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double population_stddev(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double sq = 0.0;
  for (double x : xs) sq += (x - mean) * (x - mean);
  return std::sqrt(sq / static_cast<double>(xs.size()));
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {
  SGXO_CHECK_MSG(!samples_.empty(), "CDF over empty sample set");
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1)];
}

double EmpiricalCdf::min() const { return samples_.front(); }
double EmpiricalCdf::max() const { return samples_.back(); }

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(std::size_t points) const {
  SGXO_CHECK(points >= 2);
  std::vector<Point> out;
  out.reserve(points);
  const double lo = samples_.front();
  const double hi = samples_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(Point{x, 100.0 * at(x)});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SGXO_CHECK(lo < hi);
  SGXO_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count_in(std::size_t bucket) const {
  SGXO_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_low(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket + 1);
}

double Histogram::bucket_mid(std::size_t bucket) const {
  return 0.5 * (bucket_low(bucket) + bucket_high(bucket));
}

}  // namespace sgxo
