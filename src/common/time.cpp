#include "common/time.hpp"

#include <cstdio>
#include <ostream>

namespace sgxo {

std::string to_string(Duration d) {
  const std::int64_t us = d.micros_count();
  char buf[64];
  const std::int64_t abs_us = us < 0 ? -us : us;
  if (abs_us >= 3'600'000'000LL) {
    const std::int64_t total_s = us / 1'000'000;
    std::snprintf(buf, sizeof buf, "%lldh%02lldm",
                  static_cast<long long>(total_s / 3600),
                  static_cast<long long>((total_s % 3600) / 60));
  } else if (abs_us >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(us) / 1e6);
  } else if (abs_us >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << to_string(d);
}

std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t+" << to_string(t.since_epoch());
}

}  // namespace sgxo
