// Analytical EPC capacity planner: a closed-form counterpart to the
// trace-replay simulation, answering the paper's §VI-D question — "how do
// bigger protected memory sizes change turnaround?" — in microseconds
// instead of a simulation run. Fluid-approximation estimates only; the
// tests validate them against the simulator (stability boundary, factor-2
// makespan agreement across the Fig. 7 sweep, monotonicity), which is
// what a capacity-planning tool needs.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"
#include "trace/job.hpp"
#include "trace/scaler.hpp"

namespace sgxo::exp {

/// First-moment summary of the SGX part of a workload.
struct WorkloadSummary {
  std::size_t sgx_jobs = 0;
  /// Submission span (first to last arrival).
  Duration span{};
  /// Mean advertised EPC request per SGX job.
  Bytes mean_epc_request{};
  Duration mean_duration{};

  /// Aggregate EPC demand in byte-seconds.
  [[nodiscard]] double work_byte_seconds() const;

  /// Summarises the SGX-designated jobs of a trace under a scaling config.
  [[nodiscard]] static WorkloadSummary from_jobs(
      const std::vector<trace::TraceJob>& jobs,
      const trace::ScalingConfig& scaling = {});
};

struct ClusterCapacity {
  std::size_t sgx_nodes = 2;
  Bytes usable_epc_per_node = mib(93.5);

  [[nodiscard]] Bytes total() const {
    return Bytes{usable_epc_per_node.count() * sgx_nodes};
  }
};

struct PlanEstimate {
  /// Offered EPC load ρ = work / (capacity × span).
  double utilization = 0.0;
  /// ρ < 1: the queue drains within the arrival span.
  bool stable = false;
  /// Fluid estimate of batch completion (first arrival → last job done).
  Duration makespan{};
  /// Rough mean queueing delay (fluid backlog / heavy-traffic blend).
  Duration mean_wait{};
};

[[nodiscard]] PlanEstimate estimate(const WorkloadSummary& workload,
                                    const ClusterCapacity& cluster);

}  // namespace sgxo::exp
