// End-to-end trace-replay experiment (paper §VI-B..F): generate the
// scaled Borg slice, designate SGX jobs, optionally deploy malicious
// containers, replay against a fully assembled simulated cluster, and
// collect the metrics every evaluation figure is built from.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "core/policies.hpp"
#include "exp/fixture.hpp"
#include "trace/generator.hpp"
#include "trace/scaler.hpp"

namespace sgxo::exp {

struct ReplayOptions {
  /// Fraction of trace jobs designated SGX-enabled (§VI-B sweeps 0..1).
  double sgx_fraction = 0.5;
  core::PlacementPolicy policy = core::PlacementPolicy::kBinpack;
  /// Modified driver (true) vs stock driver (false) — Fig. 11.
  bool enforce_limits = true;
  /// Simulated usable EPC size override (Fig. 7: 32/64/128/256 MiB).
  std::optional<Bytes> epc_usable_override;
  /// SGX generation of the cluster's SGX machines and, when < 1, the
  /// dynamic-memory profile of the stressors (§VI-G what-if): the fraction
  /// of each job's peak committed at enclave build. Only takes effect with
  /// an SGX 2 cluster.
  sgx::SgxVersion sgx_version = sgx::SgxVersion::kSgx1;
  double initial_usage_fraction = 1.0;
  /// Malicious squatters per SGX node (Fig. 11 deploys one per node).
  std::size_t malicious_per_sgx_node = 0;
  /// Fraction of a node's EPC each malicious container really allocates.
  double malicious_epc_fraction = 0.5;
  std::uint64_t seed = 42;
  /// Uses the request-only Kubernetes default scheduler instead of the
  /// SGX-aware one (baseline for the measured-metrics ablation).
  bool use_default_scheduler = false;
  /// Strict FCFS (head-of-line blocking) instead of Kubernetes-style
  /// skip-unschedulable (design-choice ablation).
  bool strict_fcfs = false;
  /// Runs the enclave-migration defragmentation controller (§VIII
  /// extension) alongside the scheduler.
  bool enable_migration = false;
  trace::BorgTraceConfig trace_config{};
  trace::ScalingConfig scaling{};
  ClusterConfig cluster{};
  /// Sampling period of the pending-queue series (Fig. 7).
  Duration pending_sample_period = Duration::minutes(1);
  /// Hard stop for pathological configurations.
  Duration deadline = Duration::hours(24);
};

/// Outcome of one trace job (malicious pods are reported separately).
struct JobOutcome {
  std::string pod;
  bool sgx = false;
  /// Advertised request in bytes (EPC bytes for SGX jobs, memory else).
  Bytes requested{};
  Bytes actual{};
  Duration trace_duration{};
  std::optional<Duration> waiting;     // submission → running
  std::optional<Duration> turnaround;  // submission → terminal
  bool failed = false;
  std::string failure_reason;
};

/// One sample of the pending queue (Fig. 7 series).
struct PendingSample {
  Duration at{};  // since replay start
  Bytes epc_requested{};
  Bytes memory_requested{};
  std::size_t pending_pods = 0;
};

struct ReplayResult {
  std::vector<JobOutcome> jobs;
  std::vector<PendingSample> pending_series;
  /// First submission → last trace-job termination.
  Duration makespan{};
  /// Sum of trace-reported durations (the "Trace" bar of Fig. 10).
  Duration total_trace_duration{};
  std::size_t failed_jobs = 0;
  /// Jobs whose request exceeds every node — capped to the largest node
  /// (see EXPERIMENTS.md); count reported for transparency.
  std::size_t capped_jobs = 0;
  bool completed = false;  // all trace jobs terminal before the deadline

  /// Waiting times in seconds of all jobs that started (optionally only
  /// (non-)SGX ones).
  [[nodiscard]] std::vector<double> waiting_seconds(
      std::optional<bool> sgx_only = std::nullopt) const;
  /// Sum of turnaround times over terminal jobs of the given kind.
  [[nodiscard]] Duration total_turnaround(
      std::optional<bool> sgx_only = std::nullopt) const;
};

[[nodiscard]] ReplayResult run_replay(const ReplayOptions& options);

}  // namespace sgxo::exp
