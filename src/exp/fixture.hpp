// Experiment fixture: assembles the complete simulated system — the
// paper's 5-machine cluster (§VI-A), the monitoring pipeline (Heapster +
// SGX probe DaemonSet + time-series DB) and any number of schedulers —
// and owns every component's lifetime.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/image_registry.hpp"
#include "cluster/kubelet.hpp"
#include "cluster/node.hpp"
#include "core/sgx_scheduler.hpp"
#include "orch/api_server.hpp"
#include "orch/daemonset.hpp"
#include "orch/default_scheduler.hpp"
#include "orch/heapster.hpp"
#include "orch/pod_restarter.hpp"
#include "sgx/attestation_verifier.hpp"
#include "sgx/perf_model.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"
#include "tsdb/model.hpp"

namespace sgxo::exp {

struct ClusterConfig {
  /// Machine inventory; defaults to the paper's testbed.
  std::vector<cluster::MachineSpec> machines = cluster::paper_cluster();
  /// Modified (true) vs stock (false) SGX driver.
  bool enforce_epc_limits = true;
  /// Replaces the usable EPC size on every SGX machine (Fig. 7 sweeps).
  std::optional<Bytes> epc_usable_override;
  /// Hardware generation of the SGX machines (§VI-G: SGX 2 adds dynamic
  /// enclave memory).
  sgx::SgxVersion sgx_version = sgx::SgxVersion::kSgx1;
  sgx::PerfModelConfig perf{};
  Duration scheduler_period = Duration::seconds(5);
  Duration heapster_period = Duration::seconds(10);
  Duration probe_period = Duration::seconds(10);
  Duration metrics_window = Duration::seconds(25);
  /// TSDB shard count (independent lock domains; see tsdb::DatabaseConfig).
  std::size_t tsdb_shards = 1;
  /// Attestation-gated admission: provisions every SGX node's platform
  /// with an AttestationVerifier, enables the API server's verdict cache
  /// and the kubelet-side re-verification at bind delivery.
  bool attestation = false;
  /// Gate tuning (TTLs, grace, degradation policy); used when
  /// `attestation` is true.
  orch::AttestationGate::Config attestation_config{};
  /// Kubelet-side re-verification policy; used when `attestation` is true.
  cluster::Kubelet::AttestationPolicy attestation_policy{};
};

class SimulatedCluster {
 public:
  explicit SimulatedCluster(ClusterConfig config = {});

  SimulatedCluster(const SimulatedCluster&) = delete;
  SimulatedCluster& operator=(const SimulatedCluster&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] orch::ApiServer& api() { return *api_; }
  [[nodiscard]] tsdb::Database& db() { return db_; }
  [[nodiscard]] cluster::ImageRegistry& registry() { return registry_; }
  [[nodiscard]] const sgx::PerfModel& perf() const { return perf_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::vector<cluster::Node*> nodes();
  [[nodiscard]] cluster::Node* find_node(const cluster::NodeName& name);
  [[nodiscard]] std::size_t sgx_node_count() const;
  [[nodiscard]] std::vector<cluster::Kubelet*> kubelets();
  [[nodiscard]] orch::Heapster& heapster() { return *heapster_; }
  [[nodiscard]] orch::ProbeDaemonSet& daemonset() { return *daemonset_; }
  /// The verifier, or nullptr when attestation is off.
  [[nodiscard]] sgx::AttestationVerifier* attestation_verifier() {
    return verifier_.get();
  }
  /// The API server's verdict cache, or nullptr when attestation is off.
  [[nodiscard]] orch::AttestationGate* attestation_gate() {
    return api_->attestation();
  }
  /// This node's current quote (the quoting-enclave round); CHECKs that
  /// the node has a provisioned platform.
  [[nodiscard]] sgx::Quote node_quote(const cluster::NodeName& name) const;

  /// Registers the standard effect handlers for every FaultKind on the
  /// injector: node crash/reboot through the API server, probe/Heapster
  /// dropouts and delays on the monitoring pipeline, TSDB write errors
  /// and stale-read windows on the database, and — when a restarter is
  /// given — watch-channel disconnect/re-sync on it.
  void install_fault_handlers(sim::FaultInjector& injector,
                              orch::PodRestarter* restarter = nullptr);

  /// Creates and starts an SGX-aware scheduler with the given policy.
  core::SgxAwareScheduler& add_sgx_scheduler(core::PlacementPolicy policy,
                                             std::string name = "");
  /// Full-control variant: period and metrics window default from the
  /// cluster config when left at their zero values.
  core::SgxAwareScheduler& add_sgx_scheduler(core::SgxSchedulerConfig config);
  /// Creates and starts the Kubernetes default scheduler baseline;
  /// `identity` distinguishes HA replicas sharing the default name.
  orch::DefaultScheduler& add_default_scheduler(std::string identity = {});

  /// Creates and starts an Omega-style shared-state fleet: `replicas`
  /// always-active SGX-aware schedulers sharing one name, replica i
  /// draining shard i of `replicas` with identities "<name>-i". `base`
  /// supplies everything except name/identity/shard (its shard_count is
  /// overwritten with `replicas`). Returns the replicas in shard order.
  std::vector<core::SgxAwareScheduler*> add_shared_state_fleet(
      std::size_t replicas, core::SgxSchedulerConfig base = {},
      orch::SharedStateConfig shard_base = {});

  /// All schedulers this fixture owns, in creation order.
  [[nodiscard]] std::vector<orch::Scheduler*> schedulers();
  /// The scheduler replica with the given identity, or nullptr.
  [[nodiscard]] orch::Scheduler* find_scheduler(const std::string& identity);

  /// Starts Heapster and deploys the probe DaemonSet.
  void start_monitoring();
  /// Stops all periodic components so the event queue can drain.
  void stop_all();

  /// Runs the simulation until at least `expected_pods` pods have been
  /// submitted and every submitted pod reached a terminal phase (or
  /// `deadline` virtual time passed). Returns true on success. The
  /// expected count disambiguates "all done" from "replayer has not
  /// submitted everything yet".
  bool run_until_quiescent(std::size_t expected_pods,
                           Duration deadline = Duration::hours(48));

 private:
  ClusterConfig config_;
  sim::Simulation sim_;
  tsdb::Database db_;
  cluster::ImageRegistry registry_;
  sgx::PerfModel perf_;
  std::unique_ptr<orch::ApiServer> api_;
  /// Attestation (only when config_.attestation): the verifier every layer
  /// shares, per-SGX-node platforms, and the one expected measurement.
  std::unique_ptr<sgx::AttestationVerifier> verifier_;
  std::map<cluster::NodeName, sgx::Platform> platforms_;
  sgx::Measurement attestation_measurement_{};
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::vector<std::unique_ptr<cluster::Kubelet>> kubelets_;
  std::unique_ptr<orch::Heapster> heapster_;
  std::unique_ptr<orch::ProbeDaemonSet> daemonset_;
  std::vector<std::unique_ptr<orch::Scheduler>> schedulers_;
};

}  // namespace sgxo::exp
