#include "exp/planner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sgxo::exp {

double WorkloadSummary::work_byte_seconds() const {
  return static_cast<double>(sgx_jobs) *
         static_cast<double>(mean_epc_request.count()) *
         mean_duration.as_seconds();
}

WorkloadSummary WorkloadSummary::from_jobs(
    const std::vector<trace::TraceJob>& jobs,
    const trace::ScalingConfig& scaling) {
  WorkloadSummary summary;
  Duration first = Duration::hours(1'000'000);
  Duration last{};
  double request_sum = 0.0;
  double duration_sum = 0.0;
  for (const trace::TraceJob& job : jobs) {
    if (!job.sgx) continue;
    ++summary.sgx_jobs;
    const trace::ScaledJob scaled = trace::scale_job(job, scaling);
    request_sum += static_cast<double>(scaled.advertised.count());
    duration_sum += job.duration.as_seconds();
    first = std::min(first, job.submission);
    last = std::max(last, job.submission);
  }
  if (summary.sgx_jobs == 0) return summary;
  summary.span = last - first;
  summary.mean_epc_request = Bytes{static_cast<std::uint64_t>(
      request_sum / static_cast<double>(summary.sgx_jobs))};
  summary.mean_duration = Duration::from_seconds(
      duration_sum / static_cast<double>(summary.sgx_jobs));
  return summary;
}

PlanEstimate estimate(const WorkloadSummary& workload,
                      const ClusterCapacity& cluster) {
  SGXO_CHECK_MSG(cluster.sgx_nodes > 0 &&
                     cluster.usable_epc_per_node.count() > 0,
                 "cluster needs SGX capacity");
  PlanEstimate plan;
  if (workload.sgx_jobs == 0) {
    plan.stable = true;
    return plan;
  }
  SGXO_CHECK_MSG(workload.span > Duration{},
                 "workload needs a positive arrival span");

  const double capacity = static_cast<double>(cluster.total().count());
  const double span_s = workload.span.as_seconds();
  const double work = workload.work_byte_seconds();

  plan.utilization = work / (capacity * span_s);
  plan.stable = plan.utilization < 1.0;

  // Fluid makespan: arrivals spread over `span`; the EPC drains `capacity`
  // byte-seconds per second. With ρ <= 1 the batch ends roughly one job
  // after the last arrival; beyond saturation a backlog of
  // (work - capacity·span) byte-seconds remains to drain.
  const double service_tail = workload.mean_duration.as_seconds();
  double makespan_s = span_s + service_tail;
  if (!plan.stable) {
    makespan_s = span_s + (work - capacity * span_s) / capacity +
                 service_tail;
  }
  plan.makespan = Duration::from_seconds(makespan_s);

  // Mean wait: heavy-traffic blend. Under saturation the average job sees
  // half the peak backlog; below it, an M/M/1-style term that vanishes at
  // low load. Discreteness (whole jobs on two nodes) is ignored — this is
  // a planning estimate, not the simulator.
  double wait_s = 0.0;
  if (plan.stable) {
    const double rho = plan.utilization;
    wait_s = rho / (1.0 - rho) * service_tail * 0.5;
  } else {
    const double drain_s = (work - capacity * span_s) / capacity;
    wait_s = drain_s * 0.5;
  }
  plan.mean_wait = Duration::from_seconds(wait_s);
  return plan;
}

}  // namespace sgxo::exp
