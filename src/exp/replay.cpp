#include "exp/replay.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "core/migration_controller.hpp"
#include "trace/replayer.hpp"
#include "trace/sgx_mix.hpp"
#include "workload/malicious.hpp"
#include "workload/stressor.hpp"

namespace sgxo::exp {

std::vector<double> ReplayResult::waiting_seconds(
    std::optional<bool> sgx_only) const {
  std::vector<double> out;
  for (const JobOutcome& job : jobs) {
    if (sgx_only.has_value() && job.sgx != *sgx_only) continue;
    if (job.waiting.has_value()) {
      out.push_back(job.waiting->as_seconds());
    }
  }
  return out;
}

Duration ReplayResult::total_turnaround(std::optional<bool> sgx_only) const {
  Duration total{};
  for (const JobOutcome& job : jobs) {
    if (sgx_only.has_value() && job.sgx != *sgx_only) continue;
    if (job.turnaround.has_value()) {
      total += *job.turnaround;
    }
  }
  return total;
}

namespace {

/// Caps a job's EPC fractions so its request fits the (possibly shrunken)
/// simulated EPC — otherwise small-EPC sweeps (Fig. 7) would carry jobs
/// that can never be placed and the batch would never drain.
std::size_t cap_to_capacity(std::vector<trace::TraceJob>& jobs,
                            const trace::ScalingConfig& scaling,
                            Bytes usable_epc) {
  // Cap to whole pages: the device plugin advertises floor(usable / 4 KiB)
  // pages while requests round *up*, so capping to raw bytes could still
  // produce a request one page above what any node can ever grant.
  const Pages cap_pages{usable_epc.count() / Pages::kPageSize};
  const double cap_fraction =
      static_cast<double>(cap_pages.as_bytes().count()) /
      static_cast<double>(scaling.sgx_base.count());
  std::size_t capped = 0;
  for (trace::TraceJob& job : jobs) {
    if (!job.sgx) continue;
    bool touched = false;
    if (job.assigned_memory > cap_fraction) {
      job.assigned_memory = cap_fraction;
      touched = true;
    }
    if (job.max_memory_usage > cap_fraction) {
      job.max_memory_usage = cap_fraction;
      touched = true;
    }
    if (touched) ++capped;
  }
  return capped;
}

}  // namespace

ReplayResult run_replay(const ReplayOptions& options) {
  // ---- workload -------------------------------------------------------------
  trace::BorgTraceGenerator generator{options.trace_config};
  std::vector<trace::TraceJob> jobs = generator.evaluation_slice();
  Rng rng{options.seed};
  trace::designate_sgx(jobs, options.sgx_fraction, rng);

  // ---- cluster ---------------------------------------------------------------
  ClusterConfig cluster_config = options.cluster;
  cluster_config.enforce_epc_limits = options.enforce_limits;
  cluster_config.epc_usable_override = options.epc_usable_override;
  cluster_config.sgx_version = options.sgx_version;
  SimulatedCluster cluster{cluster_config};

  const Bytes usable_epc = options.epc_usable_override.has_value()
                               ? *options.epc_usable_override
                               : sgx::EpcConfig::sgx1().usable;

  ReplayResult result;
  result.capped_jobs = cap_to_capacity(jobs, options.scaling, usable_epc);

  orch::Scheduler& scheduler =
      options.use_default_scheduler
          ? static_cast<orch::Scheduler&>(cluster.add_default_scheduler())
          : cluster.add_sgx_scheduler(options.policy);
  scheduler.set_strict_fcfs(options.strict_fcfs);
  cluster.api().set_default_scheduler(scheduler.name());
  cluster.start_monitoring();

  std::optional<core::MigrationController> migration;
  if (options.enable_migration) {
    migration.emplace(cluster.sim(), cluster.api(), cluster.perf());
    migration->start();
  }

  // ---- malicious squatters (Fig. 11) ----------------------------------------
  std::set<std::string> malicious_names;
  if (options.malicious_per_sgx_node > 0) {
    workload::MaliciousConfig mal_config;
    mal_config.epc_fraction = options.malicious_epc_fraction;
    mal_config.epc = options.epc_usable_override.has_value()
                         ? sgx::EpcConfig::with_usable(*options.epc_usable_override)
                         : sgx::EpcConfig::sgx1();
    mal_config.duration = options.deadline;  // squat for the whole replay
    std::vector<cluster::NodeName> sgx_nodes;
    for (cluster::Node* node : cluster.nodes()) {
      if (node->has_sgx()) sgx_nodes.push_back(node->name());
    }
    const std::size_t count =
        options.malicious_per_sgx_node * sgx_nodes.size();
    std::vector<cluster::PodSpec> squatters =
        workload::malicious_pods(count, mal_config);
    for (std::size_t i = 0; i < squatters.size(); ++i) {
      // The paper deploys one squatter per SGX node; pin them round-robin
      // so they cannot all pack onto the first node.
      squatters[i].node_selector = sgx_nodes[i % sgx_nodes.size()];
      malicious_names.insert(squatters[i].name);
      cluster.api().submit(std::move(squatters[i]));
    }
  }

  // ---- replay ----------------------------------------------------------------
  const trace::ScalingConfig scaling = options.scaling;
  const double initial_fraction =
      options.sgx_version == sgx::SgxVersion::kSgx2
          ? options.initial_usage_fraction
          : 1.0;
  trace::Replayer replayer{
      cluster.sim(), cluster.api(),
      [&scaling, initial_fraction](const trace::TraceJob& job, std::size_t) {
        return workload::stressor_pod(job, scaling, "", initial_fraction);
      }};
  replayer.schedule(jobs);

  // ---- pending-queue sampler (Fig. 7) ----------------------------------------
  std::vector<PendingSample>& series = result.pending_series;
  const TimePoint replay_start = cluster.sim().now();
  cluster.sim().schedule_every(
      Duration{}, options.pending_sample_period, [&, replay_start] {
        PendingSample sample;
        sample.at = cluster.sim().now() - replay_start;
        orch::PodFilter pending;
        pending.phase = cluster::PodPhase::kPending;
        for (const orch::PodRecord* record :
             cluster.api().list_pods(pending)) {
          const cluster::ResourceAmounts request =
              record->spec.total_requests();
          sample.epc_requested += request.epc_pages.as_bytes();
          sample.memory_requested += request.memory;
          ++sample.pending_pods;
        }
        series.push_back(sample);
      });

  // ---- run until every *trace* pod is terminal --------------------------------
  const std::set<std::string> trace_pods = [&] {
    std::set<std::string> names;
    for (const trace::TraceJob& job : jobs) {
      names.insert(workload::stressor_pod_name(job));
    }
    return names;
  }();

  const auto trace_done = [&] {
    std::size_t terminal = 0;
    for (const orch::PodRecord* record : cluster.api().all_pods()) {
      if (trace_pods.find(record->spec.name) == trace_pods.end()) continue;
      if (record->phase == cluster::PodPhase::kSucceeded ||
          record->phase == cluster::PodPhase::kFailed) {
        ++terminal;
      }
    }
    return terminal == trace_pods.size();
  };

  const TimePoint limit = cluster.sim().now() + options.deadline;
  while (cluster.sim().now() < limit && !trace_done()) {
    cluster.sim().run_until(
        std::min(limit, cluster.sim().now() + Duration::seconds(30)));
    if (cluster.sim().idle()) break;
  }
  result.completed = trace_done();
  if (migration.has_value()) migration->stop();
  cluster.stop_all();

  // ---- collect ----------------------------------------------------------------
  TimePoint first_submission = TimePoint::from_micros(
      std::numeric_limits<std::int64_t>::max());
  TimePoint last_termination = TimePoint::epoch();
  for (const orch::PodRecord* record : cluster.api().all_pods()) {
    if (trace_pods.find(record->spec.name) == trace_pods.end()) continue;
    JobOutcome outcome;
    outcome.pod = record->spec.name;
    outcome.sgx = record->spec.behavior.sgx;
    const cluster::ResourceAmounts request = record->spec.total_requests();
    outcome.requested =
        outcome.sgx ? request.epc_pages.as_bytes() : request.memory;
    outcome.actual = record->spec.behavior.actual_usage;
    outcome.trace_duration = record->spec.behavior.duration;
    outcome.waiting = record->waiting_time();
    outcome.turnaround = record->turnaround_time();
    outcome.failed = record->phase == cluster::PodPhase::kFailed;
    outcome.failure_reason = record->failure_reason;
    if (outcome.failed) ++result.failed_jobs;
    result.total_trace_duration += outcome.trace_duration;
    first_submission = std::min(first_submission, record->submitted);
    if (record->finished.has_value()) {
      last_termination = std::max(last_termination, *record->finished);
    }
    result.jobs.push_back(std::move(outcome));
  }
  if (!result.jobs.empty() && last_termination > first_submission) {
    result.makespan = last_termination - first_submission;
  }
  return result;
}

}  // namespace sgxo::exp
