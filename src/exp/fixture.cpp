#include "exp/fixture.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace sgxo::exp {

using namespace sgxo::literals;

SimulatedCluster::SimulatedCluster(ClusterConfig config)
    : config_(std::move(config)),
      db_(config_.tsdb_shards),
      perf_(config_.perf) {
  api_ = std::make_unique<orch::ApiServer>(sim_);

  // The evaluation image everyone runs (pulled once per node, then cached).
  registry_.publish("sebvaucher/sgx-base:stress-sgx", 200_MiB);

  for (cluster::MachineSpec spec : config_.machines) {
    if (spec.epc.has_value() && config_.epc_usable_override.has_value()) {
      spec.epc = sgx::EpcConfig::with_usable(*config_.epc_usable_override);
    }
    if (spec.epc.has_value()) {
      spec.sgx_version = config_.sgx_version;
    }
    auto node = std::make_unique<cluster::Node>(spec,
                                                config_.enforce_epc_limits);
    auto kubelet = std::make_unique<cluster::Kubelet>(sim_, *node, perf_,
                                                      registry_, *api_);
    api_->register_node(*node, *kubelet);
    nodes_.push_back(std::move(node));
    kubelets_.push_back(std::move(kubelet));
  }

  heapster_ = std::make_unique<orch::Heapster>(sim_, *api_, db_,
                                               config_.heapster_period);
  daemonset_ = std::make_unique<orch::ProbeDaemonSet>(
      sim_, *api_, db_, config_.probe_period);

  if (config_.attestation) {
    // One expected measurement — the evaluation image everyone runs — and
    // one provisioned platform per SGX node. The verifier backs both the
    // API server's verdict cache and the kubelet-side re-check.
    attestation_measurement_ =
        sgx::measure_enclave("sebvaucher/sgx-base:stress-sgx");
    sgx::AttestationVerifier::Config verifier_config;
    verifier_config.expected = attestation_measurement_;
    verifier_ = std::make_unique<sgx::AttestationVerifier>(verifier_config);
    for (const auto& node : nodes_) {
      if (!node->has_sgx()) continue;
      const auto [it, inserted] = platforms_.emplace(
          node->name(), sgx::Platform::for_node(node->name()));
      SGXO_CHECK(inserted);
      verifier_->provision(it->second);
    }
    api_->enable_attestation(
        *verifier_,
        [this](const cluster::NodeName& name) { return node_quote(name); },
        config_.attestation_config);
    for (const auto& kubelet : kubelets_) {
      if (!kubelet->node().has_sgx()) continue;
      kubelet->enable_attestation(
          *verifier_,
          [this, name = kubelet->node_name()] { return node_quote(name); },
          config_.attestation_policy);
    }
  }
}

sgx::Quote SimulatedCluster::node_quote(const cluster::NodeName& name) const {
  const auto it = platforms_.find(name);
  SGXO_CHECK_MSG(it != platforms_.end(),
                 "no provisioned platform for node " + name);
  return sgx::QuotingEnclave{it->second}.quote(attestation_measurement_,
                                               fnv1a(name));
}

std::vector<cluster::Node*> SimulatedCluster::nodes() {
  std::vector<cluster::Node*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

cluster::Node* SimulatedCluster::find_node(const cluster::NodeName& name) {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

std::vector<cluster::Kubelet*> SimulatedCluster::kubelets() {
  std::vector<cluster::Kubelet*> out;
  out.reserve(kubelets_.size());
  for (const auto& kubelet : kubelets_) {
    out.push_back(kubelet.get());
  }
  return out;
}

std::size_t SimulatedCluster::sgx_node_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const auto& node) { return node->has_sgx(); }));
}

core::SgxAwareScheduler& SimulatedCluster::add_sgx_scheduler(
    core::PlacementPolicy policy, std::string name) {
  core::SgxSchedulerConfig sched_config;
  sched_config.policy = policy;
  sched_config.name = std::move(name);
  return add_sgx_scheduler(std::move(sched_config));
}

core::SgxAwareScheduler& SimulatedCluster::add_sgx_scheduler(
    core::SgxSchedulerConfig config) {
  if (config.period == Duration{}) {
    config.period = config_.scheduler_period;
  } else if (config.period == Duration::seconds(5)) {
    config.period = config_.scheduler_period;  // struct default → cluster's
  }
  if (config.metrics_window == Duration::seconds(25)) {
    config.metrics_window = config_.metrics_window;
  }
  auto scheduler = std::make_unique<core::SgxAwareScheduler>(
      sim_, *api_, db_, std::move(config));
  scheduler->start();
  auto& ref = static_cast<core::SgxAwareScheduler&>(*schedulers_.emplace_back(
      std::move(scheduler)));
  return ref;
}

std::vector<core::SgxAwareScheduler*> SimulatedCluster::add_shared_state_fleet(
    std::size_t replicas, core::SgxSchedulerConfig base,
    orch::SharedStateConfig shard_base) {
  SGXO_CHECK_MSG(replicas >= 1, "a fleet needs at least one replica");
  const std::string name = base.name.empty()
                               ? core::SgxAwareScheduler::default_name(
                                     base.policy)
                               : base.name;
  std::vector<core::SgxAwareScheduler*> fleet;
  fleet.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    core::SgxSchedulerConfig config = base;
    config.name = name;
    config.identity = name + "-" + std::to_string(i);
    orch::SharedStateConfig shard = shard_base;
    shard.shard = static_cast<std::uint32_t>(i);
    shard.shard_count = static_cast<std::uint32_t>(replicas);
    config.shared_state = shard;
    fleet.push_back(&add_sgx_scheduler(std::move(config)));
  }
  return fleet;
}

orch::DefaultScheduler& SimulatedCluster::add_default_scheduler(
    std::string identity) {
  auto scheduler = std::make_unique<orch::DefaultScheduler>(
      sim_, *api_, config_.scheduler_period, std::move(identity));
  scheduler->start();
  orch::DefaultScheduler& ref = *scheduler;
  schedulers_.push_back(std::move(scheduler));
  return ref;
}

std::vector<orch::Scheduler*> SimulatedCluster::schedulers() {
  std::vector<orch::Scheduler*> out;
  out.reserve(schedulers_.size());
  for (const auto& scheduler : schedulers_) {
    out.push_back(scheduler.get());
  }
  return out;
}

orch::Scheduler* SimulatedCluster::find_scheduler(
    const std::string& identity) {
  for (const auto& scheduler : schedulers_) {
    if (scheduler->identity() == identity) return scheduler.get();
  }
  return nullptr;
}

void SimulatedCluster::install_fault_handlers(sim::FaultInjector& injector,
                                              orch::PodRestarter* restarter) {
  using sim::FaultKind;
  using sim::FaultSpec;

  // Node crash / reboot. Guarded on the node's current readiness so a
  // test driving fail_node directly alongside the injector cannot
  // double-fail (the injector already refcounts same-target overlaps).
  injector.on_inject(FaultKind::kNodeCrash, [this](const FaultSpec& spec) {
    cluster::Node* node = find_node(spec.target);
    if (node != nullptr && node->ready()) api_->fail_node(spec.target);
  });
  injector.on_heal(FaultKind::kNodeCrash, [this](const FaultSpec& spec) {
    cluster::Node* node = find_node(spec.target);
    if (node != nullptr && !node->ready()) api_->recover_node(spec.target);
  });

  // SGX-probe dropout ("" targets every probe); redeployed probes inherit
  // the active fault state from the DaemonSet.
  injector.on_inject(FaultKind::kProbeDropout, [this](const FaultSpec& spec) {
    daemonset_->set_drop_samples(spec.target, true);
  });
  injector.on_heal(FaultKind::kProbeDropout, [this](const FaultSpec& spec) {
    daemonset_->set_drop_samples(spec.target, false);
  });

  // Heapster dropout is cluster-wide (one central scraper).
  injector.on_inject(FaultKind::kHeapsterDropout, [this](const FaultSpec&) {
    heapster_->set_drop_samples(true);
  });
  injector.on_heal(FaultKind::kHeapsterDropout, [this](const FaultSpec&) {
    heapster_->set_drop_samples(false);
  });

  // Sample delay hits the whole pipeline: probes on the targeted node
  // ("" = all) plus Heapster.
  injector.on_inject(FaultKind::kSampleDelay, [this](const FaultSpec& spec) {
    daemonset_->set_sample_delay(spec.target, spec.delay);
    heapster_->set_sample_delay(spec.delay);
  });
  injector.on_heal(FaultKind::kSampleDelay, [this](const FaultSpec& spec) {
    daemonset_->set_sample_delay(spec.target, Duration{});
    heapster_->set_sample_delay(Duration{});
  });

  injector.on_inject(FaultKind::kTsdbWriteError, [this](const FaultSpec&) {
    db_.set_write_fault(true);
  });
  injector.on_heal(FaultKind::kTsdbWriteError, [this](const FaultSpec&) {
    db_.set_write_fault(false);
  });

  // Stale reads: queries see nothing newer than the activation instant.
  injector.on_inject(FaultKind::kTsdbStaleReads, [this](const FaultSpec&) {
    db_.set_read_horizon(sim_.now());
  });
  injector.on_heal(FaultKind::kTsdbStaleReads, [this](const FaultSpec&) {
    db_.set_read_horizon(std::nullopt);
  });

  // Per-shard TSDB faults: the target is a decimal shard index (wrapped
  // into range so a plan generated for a bigger database stays valid).
  const auto shard_of = [this](const FaultSpec& spec) {
    std::size_t shard = 0;
    try {
      shard = static_cast<std::size_t>(std::stoul(spec.target));
    } catch (const std::exception&) {
      shard = 0;
    }
    return shard % db_.shard_count();
  };
  injector.on_inject(FaultKind::kTsdbShardWriteError,
                     [this, shard_of](const FaultSpec& spec) {
                       db_.set_shard_write_fault(shard_of(spec), true);
                     });
  injector.on_heal(FaultKind::kTsdbShardWriteError,
                   [this, shard_of](const FaultSpec& spec) {
                     db_.set_shard_write_fault(shard_of(spec), false);
                   });
  injector.on_inject(FaultKind::kTsdbShardStaleReads,
                     [this, shard_of](const FaultSpec& spec) {
                       db_.set_shard_read_horizon(shard_of(spec), sim_.now());
                     });
  injector.on_heal(FaultKind::kTsdbShardStaleReads,
                   [this, shard_of](const FaultSpec& spec) {
                     db_.set_shard_read_horizon(shard_of(spec), std::nullopt);
                   });

  if (restarter != nullptr) {
    injector.on_inject(FaultKind::kWatchDisconnect,
                       [restarter](const FaultSpec&) {
                         restarter->disconnect();
                       });
    injector.on_heal(FaultKind::kWatchDisconnect,
                     [restarter](const FaultSpec&) { restarter->resync(); });
  }

  // Control-plane faults. A crashed replica does NOT release its lease
  // (crash-stop), so standbys wait out the TTL; on heal the process
  // "restarts" and rejoins as a standby.
  injector.on_inject(FaultKind::kSchedulerCrash, [this](const FaultSpec& spec) {
    orch::Scheduler* scheduler = find_scheduler(spec.target);
    if (scheduler != nullptr && !scheduler->crashed()) scheduler->crash();
  });
  injector.on_heal(FaultKind::kSchedulerCrash, [this](const FaultSpec& spec) {
    orch::Scheduler* scheduler = find_scheduler(spec.target);
    if (scheduler != nullptr && scheduler->crashed()) scheduler->restart();
  });

  // Forced lease expiry is instantaneous — there is nothing to heal; the
  // next acquisition (possibly by a different replica) re-creates it.
  injector.on_inject(FaultKind::kLeaseExpiry, [this](const FaultSpec& spec) {
    api_->leases().expire(spec.target);
  });

  // Split-brain window: the LeaseManager grants everyone until heal.
  injector.on_inject(FaultKind::kSplitBrainWindow, [this](const FaultSpec&) {
    api_->leases().set_split_brain(true);
  });
  injector.on_heal(FaultKind::kSplitBrainWindow, [this](const FaultSpec&) {
    api_->leases().set_split_brain(false);
  });

  // Attestation faults (only meaningful with an attesting cluster; the
  // plan generator downgrades these kinds for configs without one, but a
  // hand-written plan against a non-attesting fixture is simply inert).
  if (verifier_ != nullptr) {
    injector.on_inject(FaultKind::kAttestationVerifierOutage,
                       [this](const FaultSpec&) {
                         verifier_->set_outage(true);
                       });
    injector.on_heal(FaultKind::kAttestationVerifierOutage,
                     [this](const FaultSpec&) {
                       verifier_->set_outage(false);
                     });
    injector.on_inject(FaultKind::kAttestationSlowVerify,
                       [this](const FaultSpec& spec) {
                         verifier_->set_extra_latency(spec.delay);
                       });
    injector.on_heal(FaultKind::kAttestationSlowVerify,
                     [this](const FaultSpec&) {
                       verifier_->set_extra_latency(Duration{});
                     });
    // A storm is instantaneous, like kLeaseExpiry: the mass expiry fires
    // at activation and the renewal race plays out on its own — there is
    // nothing to heal (the plan's heal event still balances the
    // injected/healed counters without a handler).
    injector.on_inject(FaultKind::kReattestationStorm,
                       [this](const FaultSpec&) {
                         if (orch::AttestationGate* gate = api_->attestation();
                             gate != nullptr) {
                           gate->force_expire_all();
                         }
                       });
  }
}

void SimulatedCluster::start_monitoring() {
  heapster_->start();
  daemonset_->start();
}

void SimulatedCluster::stop_all() {
  heapster_->stop();
  daemonset_->stop();
  for (const auto& scheduler : schedulers_) {
    scheduler->stop();
  }
}

bool SimulatedCluster::run_until_quiescent(std::size_t expected_pods,
                                           Duration deadline) {
  const TimePoint limit = sim_.now() + deadline;
  const Duration check = Duration::seconds(30);

  const auto all_terminal = [this] {
    for (const orch::PodRecord* record : api_->all_pods()) {
      if (record->phase != cluster::PodPhase::kSucceeded &&
          record->phase != cluster::PodPhase::kFailed) {
        return false;
      }
    }
    return true;
  };
  const auto quiescent = [&] {
    return api_->pod_count() >= expected_pods && all_terminal();
  };

  while (sim_.now() < limit) {
    if (quiescent()) return true;
    const TimePoint next = std::min(limit, sim_.now() + check);
    sim_.run_until(next);
    if (sim_.idle()) break;
  }
  return quiescent();
}

}  // namespace sgxo::exp
