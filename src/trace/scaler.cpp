#include "trace/scaler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sgxo::trace {

namespace {

Bytes scaled(double fraction, Bytes base) {
  SGXO_CHECK_MSG(fraction >= 0.0, "negative memory fraction");
  return Bytes{static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(base.count())))};
}

}  // namespace

ScaledJob scale_job(const TraceJob& job, const ScalingConfig& config) {
  const Bytes base = job.sgx ? config.sgx_base : config.standard_base;
  ScaledJob scaled_job;
  scaled_job.advertised = scaled(job.assigned_memory, base);
  scaled_job.actual = scaled(job.max_memory_usage, base);
  return scaled_job;
}

}  // namespace sgxo::trace
