// CSV persistence for traces, so generated workloads can be inspected,
// versioned, and replayed unchanged across runs.
//
// Format (header included):
//   id,submission_us,duration_us,assigned_memory,max_memory_usage,sgx
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job.hpp"

namespace sgxo::trace {

void write_csv(std::ostream& os, const std::vector<TraceJob>& jobs);
void write_csv_file(const std::string& path, const std::vector<TraceJob>& jobs);

/// Throws DomainError on malformed input.
[[nodiscard]] std::vector<TraceJob> read_csv(std::istream& is);
[[nodiscard]] std::vector<TraceJob> read_csv_file(const std::string& path);

}  // namespace sgxo::trace
