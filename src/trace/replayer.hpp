// Trace replayer: submits one pod per trace job at the job's submission
// offset, preserving the original arrival pattern (§VI-B). Pod construction
// is delegated to a factory so the replayer stays independent of the
// concrete workload (STRESS-SGX stressors, malicious containers, ...).
#pragma once

#include <functional>
#include <vector>

#include "cluster/pod.hpp"
#include "orch/api_server.hpp"
#include "sim/simulation.hpp"
#include "trace/job.hpp"

namespace sgxo::trace {

class Replayer {
 public:
  using PodFactory =
      std::function<cluster::PodSpec(const TraceJob&, std::size_t index)>;

  Replayer(sim::Simulation& sim, orch::ApiServer& api, PodFactory factory);

  /// Schedules the submission of every job, offset from the current
  /// virtual time. Call before running the simulation.
  void schedule(const std::vector<TraceJob>& jobs);

  [[nodiscard]] std::size_t scheduled_jobs() const { return scheduled_; }

 private:
  sim::Simulation* sim_;
  orch::ApiServer* api_;
  PodFactory factory_;
  std::size_t scheduled_ = 0;
};

}  // namespace sgxo::trace
