// Memory scaling of trace jobs onto the evaluation cluster (paper §VI-B).
//
// The public trace reports memory as a fraction of the largest machine in
// Google's cluster, without absolute values. The paper materialises it as:
//   * SGX jobs:      fraction × 93.5 MiB (the total usable EPC);
//   * standard jobs: fraction × 32 GiB  (power of two nearest the average
//                    machine memory of the testbed).
#pragma once

#include "common/units.hpp"
#include "trace/job.hpp"

namespace sgxo::trace {

struct ScalingConfig {
  /// Multiplier for SGX jobs' fractions — the usable EPC size.
  Bytes sgx_base = mib(93.5);
  /// Multiplier for standard jobs' fractions.
  Bytes standard_base = Bytes{32ULL << 30};
};

/// Concrete byte amounts for one job under a scaling configuration.
struct ScaledJob {
  /// Advertised to Kubernetes in requests/limits.
  Bytes advertised{};
  /// What the stressor will actually allocate.
  Bytes actual{};
};

[[nodiscard]] ScaledJob scale_job(const TraceJob& job,
                                  const ScalingConfig& config);

}  // namespace sgxo::trace
