#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace sgxo::trace {

BorgTraceGenerator::BorgTraceGenerator(BorgTraceConfig config)
    : config_(config) {
  SGXO_CHECK_MSG(config_.slice_start < config_.slice_end,
                 "empty evaluation slice");
  SGXO_CHECK_MSG(config_.over_allocating_jobs <= config_.slice_jobs,
                 "more over-allocators than jobs");
  SGXO_CHECK(config_.sampling_stride > 0);
  SGXO_CHECK_MSG(config_.over_declare_min >= 1.0 &&
                     config_.over_declare_max >= config_.over_declare_min,
                 "over-declaration factors must satisfy 1 <= min <= max");
}

InverseCdfSampler BorgTraceGenerator::memory_fraction_cdf() {
  // Knots traced from Fig. 3: memory usage as a fraction of the largest
  // machine; the median sits around 5 %, with a heavy tail reaching 50 %.
  // The tail weight is calibrated so the evaluation slice reproduces the
  // paper's contention level on the §VI-A cluster (100 % SGX jobs slightly
  // oversubscribe the two EPCs; standard jobs fit comfortably) — see
  // EXPERIMENTS.md.
  return InverseCdfSampler{{
      {0.00, 0.001},
      {0.30, 0.01},
      {0.50, 0.05},
      {0.70, 0.10},
      {0.85, 0.18},
      {0.95, 0.30},
      {1.00, 0.50},
  }};
}

InverseCdfSampler BorgTraceGenerator::duration_seconds_cdf() {
  // Knots traced from Fig. 4: all jobs last at most 300 s; the median sits
  // around 60 s with a long-ish upper half (mean ≈ 100 s).
  return InverseCdfSampler{{
      {0.00, 1.0},
      {0.20, 20.0},
      {0.40, 45.0},
      {0.60, 90.0},
      {0.80, 170.0},
      {0.95, 270.0},
      {1.00, 300.0},
  }};
}

std::vector<double> BorgTraceGenerator::sample_memory_fractions(
    std::size_t n) const {
  Rng rng{config_.seed ^ 0x6d656d6f72795fULL};
  const InverseCdfSampler cdf = memory_fraction_cdf();
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(cdf.sample(rng));
  }
  return out;
}

std::vector<double> BorgTraceGenerator::sample_durations_seconds(
    std::size_t n) const {
  Rng rng{config_.seed ^ 0x6475726174696fULL};
  const InverseCdfSampler cdf = duration_seconds_cdf();
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(cdf.sample(rng));
  }
  return out;
}

const char* to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kUniform: return "uniform";
    case ArrivalPattern::kPoisson: return "poisson";
    case ArrivalPattern::kBursty: return "bursty";
  }
  return "?";
}

namespace {

/// Submission offsets (seconds) for `n` jobs across [0, slice_seconds),
/// under the requested arrival process. Unsorted; the caller sorts.
std::vector<double> arrival_offsets(ArrivalPattern pattern, std::size_t n,
                                    double slice_seconds, Rng& rng) {
  std::vector<double> offsets;
  offsets.reserve(n);
  switch (pattern) {
    case ArrivalPattern::kUniform:
      for (std::size_t i = 0; i < n; ++i) {
        offsets.push_back(rng.uniform(0.0, slice_seconds));
      }
      break;
    case ArrivalPattern::kPoisson: {
      // Exponential interarrivals; rescaled onto the slice so the job
      // count is exact and the mean rate matches.
      double t = 0.0;
      const double mean_gap = slice_seconds / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        t += rng.exponential(mean_gap);
        offsets.push_back(t);
      }
      const double span = offsets.back();
      for (double& offset : offsets) {
        offset *= (slice_seconds * 0.999) / span;
      }
      break;
    }
    case ArrivalPattern::kBursty: {
      // A handful of bursts; each job lands near one burst epoch.
      const int bursts = 6;
      std::vector<double> epochs;
      for (int b = 0; b < bursts; ++b) {
        epochs.push_back(slice_seconds * (0.5 + b) /
                         static_cast<double>(bursts));
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double epoch = epochs[static_cast<std::size_t>(
            rng.uniform_int(0, bursts - 1))];
        const double jitter = rng.normal(0.0, slice_seconds * 0.01);
        offsets.push_back(
            std::clamp(epoch + jitter, 0.0, slice_seconds * 0.999));
      }
      break;
    }
  }
  return offsets;
}

}  // namespace

std::vector<TraceJob> BorgTraceGenerator::evaluation_slice() const {
  Rng rng{config_.seed};
  const InverseCdfSampler mem_cdf = memory_fraction_cdf();
  const InverseCdfSampler dur_cdf = duration_seconds_cdf();
  const double slice_seconds =
      (config_.slice_end - config_.slice_start).as_seconds();

  const std::vector<double> offsets = arrival_offsets(
      config_.arrivals, config_.slice_jobs, slice_seconds, rng);

  std::vector<TraceJob> jobs;
  jobs.reserve(config_.slice_jobs);
  for (std::size_t i = 0; i < config_.slice_jobs; ++i) {
    TraceJob job;
    job.submission = Duration::from_seconds(offsets[i]);
    job.duration = Duration::from_seconds(dur_cdf.sample(rng));
    job.max_memory_usage = mem_cdf.sample(rng);
    // Most users over-declare (assigned >= used)...
    job.assigned_memory =
        job.max_memory_usage *
        (config_.over_declare_min == config_.over_declare_max
             ? config_.over_declare_min
             : rng.uniform(config_.over_declare_min,
                           config_.over_declare_max));
    jobs.push_back(job);
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const TraceJob& a, const TraceJob& b) {
              return a.submission < b.submission;
            });

  // ...but exactly `over_allocating_jobs` of them declared less than they
  // really use (44/663 in the paper's slice).
  std::vector<std::size_t> indices(jobs.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.shuffle(indices);
  for (std::size_t k = 0; k < config_.over_allocating_jobs; ++k) {
    TraceJob& job = jobs[indices[k]];
    job.assigned_memory = job.max_memory_usage * rng.uniform(0.3, 0.9);
  }

  // The trace's own job ids: every `sampling_stride`-th job of the full
  // stream, starting where the slice begins.
  const std::uint64_t first_id =
      static_cast<std::uint64_t>(config_.slice_start.as_seconds()) * 100;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = first_id + static_cast<std::uint64_t>(i + 1) *
                                config_.sampling_stride;
  }
  return jobs;
}

std::vector<ConcurrencyPoint> BorgTraceGenerator::concurrency_profile(
    Duration step) const {
  SGXO_CHECK(step > Duration{});
  Rng rng{config_.seed ^ 0x636f6e6375727eULL};
  std::vector<ConcurrencyPoint> points;
  const Duration day = Duration::hours(24);
  const double slice_mid_h =
      0.5 * (config_.slice_start + config_.slice_end).as_hours();
  for (Duration t{}; t <= day; t += step) {
    const double h = t.as_hours();
    // Slow daily wave between ~127k and ~143k, with its trough centred on
    // the evaluation slice (the paper picked that hour as the least
    // job-intensive of the considered interval).
    const double wave =
        std::cos((h - slice_mid_h) / 24.0 * 2.0 * std::numbers::pi);
    const double base = 135'000.0 - 8'000.0 * wave;
    const double noise = rng.normal(0.0, 900.0);
    ConcurrencyPoint point;
    point.at = t;
    point.running_jobs = static_cast<std::uint64_t>(
        std::max(0.0, base + noise));
    points.push_back(point);
  }
  return points;
}

}  // namespace sgxo::trace
