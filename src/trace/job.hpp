// One job extracted from the (synthetic) Google Borg trace, carrying the
// four fields the paper uses (§VI-B): submission time, duration, assigned
// memory and maximal memory usage. Memory is a fraction of the largest
// machine's capacity, exactly as the public trace reports it — scaling to
// concrete byte amounts happens later (scaler.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace sgxo::trace {

struct TraceJob {
  std::uint64_t id = 0;
  /// Offset from the start of the replayed slice.
  Duration submission{};
  /// Useful runtime; replayed exactly (§VI-B).
  Duration duration{};
  /// Memory advertised at submission (fraction of the reference machine).
  double assigned_memory = 0.0;
  /// Memory the job actually allocates (fraction). May exceed
  /// assigned_memory: 44 of the 663 evaluation jobs do.
  double max_memory_usage = 0.0;
  /// Designated SGX-enabled (the trace itself has no SGX jobs; the paper
  /// arbitrarily designates a configurable percentage).
  bool sgx = false;

  /// True for jobs that try to allocate more than they advertised — the
  /// jobs killed at launch when limits are enforced (§VI-F).
  [[nodiscard]] bool over_allocates() const {
    return max_memory_usage > assigned_memory;
  }
};

}  // namespace sgxo::trace
