#include "trace/sgx_mix.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sgxo::trace {

void designate_sgx(std::vector<TraceJob>& jobs, double fraction, Rng& rng) {
  SGXO_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                 "SGX fraction must be within [0, 1]");
  for (TraceJob& job : jobs) {
    job.sgx = false;
  }
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(jobs.size()));
  std::vector<std::size_t> indices(jobs.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.shuffle(indices);
  for (std::size_t k = 0; k < count; ++k) {
    jobs[indices[k]].sgx = true;
  }
}

std::size_t sgx_count(const std::vector<TraceJob>& jobs) {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const TraceJob& job) { return job.sgx; }));
}

}  // namespace sgxo::trace
