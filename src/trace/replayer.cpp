#include "trace/replayer.hpp"

#include "common/error.hpp"

namespace sgxo::trace {

Replayer::Replayer(sim::Simulation& sim, orch::ApiServer& api,
                   PodFactory factory)
    : sim_(&sim), api_(&api), factory_(std::move(factory)) {
  SGXO_CHECK_MSG(static_cast<bool>(factory_), "replayer needs a pod factory");
}

void Replayer::schedule(const std::vector<TraceJob>& jobs) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const TraceJob job = jobs[i];
    const std::size_t index = i;
    sim_->schedule_after(job.submission, [this, job, index] {
      api_->submit(factory_(job, index));
    });
    ++scheduled_;
  }
}

}  // namespace sgxo::trace
