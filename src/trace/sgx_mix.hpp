// SGX designation: the public trace has no SGX jobs, so the paper
// "arbitrarily designates a subset of trace jobs as SGX-enabled",
// sweeping the fraction from 0 % to 100 % in 25 % steps (§VI-B).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "trace/job.hpp"

namespace sgxo::trace {

/// Marks floor(fraction * jobs.size()) jobs as SGX-enabled, chosen
/// uniformly (deterministic in the rng state). fraction in [0, 1].
void designate_sgx(std::vector<TraceJob>& jobs, double fraction, Rng& rng);

/// Number of SGX-designated jobs.
[[nodiscard]] std::size_t sgx_count(const std::vector<TraceJob>& jobs);

}  // namespace sgxo::trace
