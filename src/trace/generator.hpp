// Synthetic Google Borg trace, statistically matched to the paper's
// published characterisations of the 2011 trace (§VI-B):
//
//   * Fig. 3 — CDF of per-job maximal memory usage (fraction of the
//     largest machine; almost all jobs below 10 %, max ~50 %);
//   * Fig. 4 — CDF of job durations, all at most 300 s;
//   * Fig. 5 — 125k–145k concurrently running jobs across the first 24 h,
//     with the evaluation slice [6480 s, 10080 s) chosen as the least
//     job-intensive hour of that day;
//   * the two scale reductions: the 1-hour time slice and every-1200th-job
//     frequency sampling, yielding 663 jobs of which 44 over-allocate.
//
// The original trace is only used by the paper through these marginals, so
// reproducing them preserves every evaluated behaviour (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/job.hpp"

namespace sgxo::trace {

/// Shape of the arrival process within the evaluation slice. The paper's
/// slice was chosen for its flat intensity (kUniform reproduces that);
/// the alternatives support sensitivity analysis of the scheduler under
/// different burstiness at identical load.
enum class ArrivalPattern {
  kUniform,  // flat intensity across the slice (paper-like)
  kPoisson,  // memoryless interarrivals at the same mean rate
  kBursty,   // arrivals clustered into a few dense bursts
};

[[nodiscard]] const char* to_string(ArrivalPattern pattern);

struct BorgTraceConfig {
  std::uint64_t seed = 2011;
  ArrivalPattern arrivals = ArrivalPattern::kUniform;
  /// Evaluation slice bounds within the first day (paper values).
  Duration slice_start = Duration::seconds(6480);
  Duration slice_end = Duration::seconds(10080);
  /// Frequency reduction: every Nth job is kept.
  std::uint64_t sampling_stride = 1200;
  /// Jobs in the sampled evaluation slice (paper: 663, 44 over-allocating).
  std::size_t slice_jobs = 663;
  std::size_t over_allocating_jobs = 44;
  /// How much honest users over-declare: assigned = usage × U(min, max).
  /// The trace shows mild inflation (1..2×); sensitivity studies can
  /// crank it up to measure the value of usage-based scheduling.
  double over_declare_min = 1.0;
  double over_declare_max = 2.0;
};

/// One sample of the full-scale trace's running-job count (Fig. 5).
struct ConcurrencyPoint {
  Duration at{};
  std::uint64_t running_jobs = 0;
};

class BorgTraceGenerator {
 public:
  explicit BorgTraceGenerator(BorgTraceConfig config = {});

  [[nodiscard]] const BorgTraceConfig& config() const { return config_; }

  /// The scaled-down evaluation workload: `slice_jobs` jobs with
  /// submissions inside the slice (offsets relative to the slice start),
  /// Fig. 3/4 marginals, and exactly `over_allocating_jobs` jobs whose real
  /// usage exceeds their advertisement. Deterministic in the seed.
  [[nodiscard]] std::vector<TraceJob> evaluation_slice() const;

  /// Draws `n` per-job maximal memory usage fractions (Fig. 3 marginal).
  [[nodiscard]] std::vector<double> sample_memory_fractions(std::size_t n) const;

  /// Draws `n` job durations (Fig. 4 marginal, capped at 300 s).
  [[nodiscard]] std::vector<double> sample_durations_seconds(
      std::size_t n) const;

  /// Full-scale concurrently-running-job counts over the first 24 h at the
  /// given resolution (Fig. 5): a ~135k baseline with a slow daily wave and
  /// per-sample noise, dipping to its minimum across the evaluation slice.
  [[nodiscard]] std::vector<ConcurrencyPoint> concurrency_profile(
      Duration step = Duration::minutes(10)) const;

  /// The Fig. 3 and Fig. 4 inverse CDFs (exposed for tests and harnesses).
  [[nodiscard]] static InverseCdfSampler memory_fraction_cdf();
  [[nodiscard]] static InverseCdfSampler duration_seconds_cdf();

 private:
  BorgTraceConfig config_;
};

}  // namespace sgxo::trace
