#include "trace/csv.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace sgxo::trace {

namespace {

constexpr const char* kHeader =
    "id,submission_us,duration_us,assigned_memory,max_memory_usage,sgx";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream iss{line};
  while (std::getline(iss, field, sep)) {
    fields.push_back(field);
  }
  // Trailing empty field after a final separator.
  if (!line.empty() && line.back() == sep) {
    fields.emplace_back();
  }
  return fields;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<TraceJob>& jobs) {
  // Full round-trip precision for the memory fractions.
  os.precision(17);
  os << kHeader << '\n';
  for (const TraceJob& job : jobs) {
    os << job.id << ',' << job.submission.micros_count() << ','
       << job.duration.micros_count() << ',' << job.assigned_memory << ','
       << job.max_memory_usage << ',' << (job.sgx ? 1 : 0) << '\n';
  }
}

void write_csv_file(const std::string& path,
                    const std::vector<TraceJob>& jobs) {
  std::ofstream file{path};
  if (!file) {
    throw DomainError{"cannot open trace file for writing: " + path};
  }
  write_csv(file, jobs);
}

std::vector<TraceJob> read_csv(std::istream& is) {
  std::vector<TraceJob> jobs;
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw DomainError{"trace CSV: missing or unexpected header"};
  }
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    if (fields.size() != 6) {
      throw DomainError{"trace CSV line " + std::to_string(line_no) +
                        ": expected 6 fields, got " +
                        std::to_string(fields.size())};
    }
    try {
      TraceJob job;
      job.id = std::stoull(fields[0]);
      job.submission = Duration::micros(std::stoll(fields[1]));
      job.duration = Duration::micros(std::stoll(fields[2]));
      job.assigned_memory = std::stod(fields[3]);
      job.max_memory_usage = std::stod(fields[4]);
      const int sgx = std::stoi(fields[5]);
      if (sgx != 0 && sgx != 1) {
        throw DomainError{"sgx flag must be 0 or 1"};
      }
      job.sgx = sgx == 1;
      jobs.push_back(job);
    } catch (const std::invalid_argument&) {
      throw DomainError{"trace CSV line " + std::to_string(line_no) +
                        ": malformed number"};
    } catch (const std::out_of_range&) {
      throw DomainError{"trace CSV line " + std::to_string(line_no) +
                        ": number out of range"};
    }
  }
  return jobs;
}

std::vector<TraceJob> read_csv_file(const std::string& path) {
  std::ifstream file{path};
  if (!file) {
    throw DomainError{"cannot open trace file: " + path};
  }
  return read_csv(file);
}

}  // namespace sgxo::trace
