// Deterministic fault-injection engine.
//
// A FaultPlan is a declarative schedule of fault activations (node
// crashes, metrics-pipeline dropouts and delays, TSDB write errors and
// stale-read windows, watch-channel disconnects). The FaultInjector arms
// a plan on the simulation clock: every activation and every heal is an
// ordinary simulation event, so a run with the same RNG seed and the same
// plan is bit-for-bit reproducible — the foundation of the chaos property
// harness (any failing scenario replays exactly from its logged seed).
//
// The injector itself knows nothing about the cluster: concrete effects
// are registered as per-kind inject/heal handlers (the experiment fixture
// wires the standard set). Overlapping faults of the same (kind, target)
// are reference-counted so the heal handler fires only when the *last*
// overlapping activation ends.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace sgxo::sim {

enum class FaultKind {
  /// Node crashes: pods on it are lost, kubelet state is wiped; the node
  /// reboots (cold image cache) when the fault heals.
  kNodeCrash,
  /// The SGX probe on `target` ("" = every probe) stops delivering EPC
  /// samples to the TSDB.
  kProbeDropout,
  /// Heapster stops delivering standard-memory samples (cluster-wide).
  kHeapsterDropout,
  /// Probe + Heapster samples arrive `delay` late (original timestamps,
  /// out-of-order TSDB writes).
  kSampleDelay,
  /// Every TSDB write fails (samples are lost, not buffered).
  kTsdbWriteError,
  /// TSDB queries see no data newer than the activation instant.
  kTsdbStaleReads,
  /// An informer watch channel drops; the client re-lists on heal.
  kWatchDisconnect,
  /// The scheduler replica with identity `target` crash-stops (its lease
  /// is NOT released); it restarts as a standby when the fault heals.
  kSchedulerCrash,
  /// The lease named `target` is forcibly expired at activation — an
  /// instantaneous event (the duration only delays the plan horizon), a
  /// stand-in for clock skew / an etcd leader hiccup dropping the lease.
  kLeaseExpiry,
  /// While active, the LeaseManager grants every acquisition — every
  /// contending replica believes it leads. The window where conditional
  /// binds and the kubelet admission guard are the only safety net.
  kSplitBrainWindow,
  /// One TSDB shard (target = decimal shard index) drops every write
  /// routed to it; other shards keep ingesting.
  kTsdbShardWriteError,
  /// One TSDB shard (target = decimal shard index) serves reads frozen at
  /// the activation instant while other shards stay live.
  kTsdbShardStaleReads,
  /// The attestation verifier is unreachable: every quote verification
  /// comes back Unavailable until heal. Cached verdicts keep serving until
  /// they expire; expired nodes shed their SGX pods.
  kAttestationVerifierOutage,
  /// Quote verifications take `delay` longer than the healthy round-trip;
  /// past the verifier timeout they fail as transient Timeout verdicts.
  kAttestationSlowVerify,
  /// Re-attestation storm: every cached node verdict soft-expires at the
  /// activation instant, forcing cluster-wide re-verification at once (an
  /// instantaneous event, like kLeaseExpiry — the duration only delays the
  /// plan horizon).
  kReattestationStorm,
};

/// Number of FaultKind values (random_plan draws uniformly over them).
inline constexpr int kFaultKindCount = 15;

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kNodeCrash;
  /// Activation time, relative to FaultInjector::arm.
  Duration at{};
  /// Active window; zero means the fault never heals.
  Duration duration{};
  /// Node name for node-scoped kinds ("" = all / not applicable).
  std::string target;
  /// kSampleDelay only: how late samples arrive.
  Duration delay{};

  [[nodiscard]] std::string describe() const;
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// Time (relative to arm) at which the last fault has healed; permanent
  /// faults contribute only their activation time.
  [[nodiscard]] Duration horizon() const;
  /// One-line reproducible description ("kind@t+d target=...; ...").
  [[nodiscard]] std::string describe() const;
};

/// Knobs of the randomized plan generator used by the chaos harness.
struct RandomPlanConfig {
  /// Activations are drawn uniformly in [0, window).
  Duration window = Duration::minutes(10);
  std::size_t min_faults = 1;
  std::size_t max_faults = 6;
  /// Fault durations are drawn uniformly in [min_duration, max_duration].
  Duration min_duration = Duration::seconds(10);
  Duration max_duration = Duration::minutes(2);
  /// kSampleDelay delays are drawn uniformly in (0, max_delay].
  Duration max_delay = Duration::seconds(30);
  /// Crash / probe-dropout targets (typically the schedulable nodes; probe
  /// dropouts only land on the SGX subset a harness passes here).
  std::vector<std::string> crash_targets;
  std::vector<std::string> probe_targets;
  /// Scheduler replica identities eligible for kSchedulerCrash and lease
  /// names eligible for kLeaseExpiry. Empty lists downgrade those draws
  /// (like crash_targets) so non-HA harness configs keep their plans.
  std::vector<std::string> scheduler_targets;
  std::vector<std::string> lease_targets;
  /// TSDB shard indices (as decimal strings) eligible for the per-shard
  /// fault kinds. Empty downgrades those draws to the database-wide
  /// kTsdbWriteError / kTsdbStaleReads, so 1-shard harness configs keep
  /// their plans.
  std::vector<std::string> tsdb_shard_targets;
  /// True when the cluster under test runs attestation-gated admission.
  /// False downgrades the attestation fault kinds (outage/storm →
  /// kHeapsterDropout, slow-verify → kSampleDelay) so non-attesting
  /// harness configs keep their plans.
  bool attestation = false;
};

/// Resolves the kind a drawn fault downgrades to under `config` — the
/// single table behind random_plan's per-kind fallbacks (a kind whose
/// prerequisites the config lacks falls back to an always-available
/// equivalent, chaining until one is available). Returns `kind` itself
/// when its prerequisites hold.
[[nodiscard]] FaultKind downgrade_for_config(FaultKind kind,
                                             const RandomPlanConfig& config);

/// Draws a randomized, fully-healing fault plan. Every draw comes from
/// `rng`, so the plan is a pure function of the seed and the config.
[[nodiscard]] FaultPlan random_plan(Rng& rng, const RandomPlanConfig& config);

class FaultInjector {
 public:
  using Handler = std::function<void(const FaultSpec&)>;

  explicit FaultInjector(Simulation& sim);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers the handler fired when a fault of `kind` activates /
  /// heals. At most one handler per kind and edge (later calls replace).
  void on_inject(FaultKind kind, Handler handler);
  void on_heal(FaultKind kind, Handler handler);

  /// Schedules every fault of the plan relative to the current virtual
  /// time. May be called repeatedly (plans accumulate).
  void arm(const FaultPlan& plan);

  /// True while at least one fault of (kind, target) is active.
  [[nodiscard]] bool active(FaultKind kind, const std::string& target) const;
  /// Total activations / heals fired so far.
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t healed() const { return healed_; }
  /// Currently-active activation count (permanent faults never leave).
  [[nodiscard]] std::size_t active_count() const;

 private:
  using Key = std::pair<FaultKind, std::string>;

  void inject(const FaultSpec& spec);
  void heal(const FaultSpec& spec);

  Simulation* sim_;
  std::map<FaultKind, Handler> inject_handlers_;
  std::map<FaultKind, Handler> heal_handlers_;
  /// Overlap reference counts per (kind, target).
  std::map<Key, int> active_;
  std::uint64_t injected_ = 0;
  std::uint64_t healed_ = 0;
};

}  // namespace sgxo::sim
