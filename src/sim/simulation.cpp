#include "sim/simulation.hpp"

#include <algorithm>

namespace sgxo::sim {

EventId Simulation::push(TimePoint at, Duration period, Callback cb) {
  SGXO_CHECK_MSG(at >= now_, "cannot schedule in the past");
  SGXO_CHECK_MSG(static_cast<bool>(cb), "null event callback");
  const EventId id{next_seq_};
  queue_.push(Entry{at, next_seq_, period, std::move(cb)});
  ++next_seq_;
  return id;
}

EventId Simulation::schedule_at(TimePoint at, Callback cb) {
  return push(at, Duration{}, std::move(cb));
}

EventId Simulation::schedule_after(Duration delay, Callback cb) {
  SGXO_CHECK_MSG(delay >= Duration{}, "negative delay");
  return push(now_ + delay, Duration{}, std::move(cb));
}

EventId Simulation::schedule_every(Duration initial_delay, Duration period,
                                   Callback cb) {
  SGXO_CHECK_MSG(period > Duration{}, "period must be positive");
  SGXO_CHECK_MSG(initial_delay >= Duration{}, "negative initial delay");
  return push(now_ + initial_delay, period, std::move(cb));
}

bool Simulation::cancel(EventId id) {
  if (!id.valid() || id.seq_ >= next_seq_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id.seq_) !=
      cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id.seq_);
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy the small fields and move the
    // callback out via const_cast-free re-push for repeating events.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    const auto cancelled_it =
        std::find(cancelled_.begin(), cancelled_.end(), entry.seq);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    now_ = entry.at;
    ++fired_;
    if (entry.period > Duration{}) {
      // Re-arm before invoking so the callback can cancel its own timer.
      queue_.push(Entry{entry.at + entry.period, entry.seq, entry.period,
                        entry.cb});
      entry.cb();
    } else {
      entry.cb();
    }
    return true;
  }
  return false;
}

void Simulation::run(std::uint64_t max_events) {
  const std::uint64_t start = fired_;
  while (step()) {
    SGXO_CHECK_MSG(fired_ - start <= max_events,
                   "simulation exceeded max_events — runaway timer?");
  }
}

void Simulation::run_until(TimePoint deadline) {
  SGXO_CHECK_MSG(deadline >= now_, "deadline in the past");
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  now_ = deadline;
}

}  // namespace sgxo::sim
