#include "sim/fault.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sgxo::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kProbeDropout:
      return "probe-dropout";
    case FaultKind::kHeapsterDropout:
      return "heapster-dropout";
    case FaultKind::kSampleDelay:
      return "sample-delay";
    case FaultKind::kTsdbWriteError:
      return "tsdb-write-error";
    case FaultKind::kTsdbStaleReads:
      return "tsdb-stale-reads";
    case FaultKind::kWatchDisconnect:
      return "watch-disconnect";
    case FaultKind::kSchedulerCrash:
      return "scheduler-crash";
    case FaultKind::kLeaseExpiry:
      return "lease-expiry";
    case FaultKind::kSplitBrainWindow:
      return "split-brain-window";
    case FaultKind::kTsdbShardWriteError:
      return "tsdb-shard-write-error";
    case FaultKind::kTsdbShardStaleReads:
      return "tsdb-shard-stale-reads";
    case FaultKind::kAttestationVerifierOutage:
      return "attestation-verifier-outage";
    case FaultKind::kAttestationSlowVerify:
      return "attestation-slow-verify";
    case FaultKind::kReattestationStorm:
      return "reattestation-storm";
  }
  return "unknown";
}

std::string FaultSpec::describe() const {
  std::string out = to_string(kind);
  out += "@" + sgxo::to_string(at);
  if (duration > Duration{}) {
    out += "+" + sgxo::to_string(duration);
  } else {
    out += "+forever";
  }
  if (!target.empty()) out += " target=" + target;
  if (delay > Duration{}) out += " delay=" + sgxo::to_string(delay);
  return out;
}

Duration FaultPlan::horizon() const {
  Duration end{};
  for (const FaultSpec& fault : faults) {
    end = std::max(end, fault.at + fault.duration);
  }
  return end;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultSpec& fault : faults) {
    if (!out.empty()) out += "; ";
    out += fault.describe();
  }
  return out.empty() ? "(no faults)" : out;
}

namespace {

const std::string& pick(Rng& rng, const std::vector<std::string>& options) {
  return options[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
}

}  // namespace

FaultKind downgrade_for_config(FaultKind kind,
                               const RandomPlanConfig& config) {
  /// One row per kind with prerequisites: when `available` is false under
  /// the config, the draw falls back to `fallback` (which may itself have
  /// a row — resolution chains, e.g. kLeaseExpiry → kSchedulerCrash →
  /// kHeapsterDropout). Kinds without a row are always available. Keeping
  /// this a single table means a new fault kind cannot silently skip its
  /// downgrade: either it has a row here or it must work in every config.
  struct DowngradeRule {
    FaultKind kind;
    bool (*available)(const RandomPlanConfig&);
    FaultKind fallback;
  };
  static constexpr DowngradeRule kRules[] = {
      {FaultKind::kNodeCrash,
       [](const RandomPlanConfig& c) { return !c.crash_targets.empty(); },
       FaultKind::kHeapsterDropout},
      {FaultKind::kSchedulerCrash,
       [](const RandomPlanConfig& c) { return !c.scheduler_targets.empty(); },
       FaultKind::kHeapsterDropout},
      // Shared-state fleets run without leases: lease faults are
      // meaningless there, but scheduler crashes are the equivalent
      // control-plane disruption.
      {FaultKind::kLeaseExpiry,
       [](const RandomPlanConfig& c) { return !c.lease_targets.empty(); },
       FaultKind::kSchedulerCrash},
      {FaultKind::kSplitBrainWindow,
       [](const RandomPlanConfig& c) { return !c.lease_targets.empty(); },
       FaultKind::kSchedulerCrash},
      // Without shard targets (a 1-shard database) the equivalent
      // disruption is the database-wide kind.
      {FaultKind::kTsdbShardWriteError,
       [](const RandomPlanConfig& c) { return !c.tsdb_shard_targets.empty(); },
       FaultKind::kTsdbWriteError},
      {FaultKind::kTsdbShardStaleReads,
       [](const RandomPlanConfig& c) { return !c.tsdb_shard_targets.empty(); },
       FaultKind::kTsdbStaleReads},
      // Non-attesting clusters have no verifier to break and no verdict
      // cache to storm.
      {FaultKind::kAttestationVerifierOutage,
       [](const RandomPlanConfig& c) { return c.attestation; },
       FaultKind::kHeapsterDropout},
      {FaultKind::kReattestationStorm,
       [](const RandomPlanConfig& c) { return c.attestation; },
       FaultKind::kHeapsterDropout},
      {FaultKind::kAttestationSlowVerify,
       [](const RandomPlanConfig& c) { return c.attestation; },
       FaultKind::kSampleDelay},
  };
  // Chains are short (≤ kind count) and acyclic by construction; the loop
  // terminates when the kind has no rule or its prerequisites hold.
  for (bool resolved = false; !resolved;) {
    resolved = true;
    for (const DowngradeRule& rule : kRules) {
      if (rule.kind != kind) continue;
      if (!rule.available(config)) {
        kind = rule.fallback;
        resolved = false;
      }
      break;
    }
  }
  return kind;
}

FaultPlan random_plan(Rng& rng, const RandomPlanConfig& config) {
  SGXO_CHECK_MSG(config.min_faults <= config.max_faults,
                 "min_faults must not exceed max_faults");
  SGXO_CHECK_MSG(config.min_duration <= config.max_duration,
                 "min_duration must not exceed max_duration");
  FaultPlan plan;
  const auto count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config.min_faults),
      static_cast<std::int64_t>(config.max_faults)));
  for (std::size_t i = 0; i < count; ++i) {
    FaultSpec fault;
    fault.kind = downgrade_for_config(
        static_cast<FaultKind>(rng.uniform_int(0, kFaultKindCount - 1)),
        config);
    fault.at = Duration::micros(
        rng.uniform_int(0, std::max<std::int64_t>(
                               config.window.micros_count() - 1, 0)));
    // Randomized plans always heal — the chaos harness asserts that the
    // cluster reconverges, which needs every injected fault to end.
    fault.duration = Duration::micros(
        rng.uniform_int(config.min_duration.micros_count(),
                        config.max_duration.micros_count()));
    // Target / delay assignment for the *resolved* kind. Downgrading is
    // done (downgrade_for_config never returns a kind whose list below is
    // empty), so these draws cannot fail.
    switch (fault.kind) {
      case FaultKind::kNodeCrash:
        fault.target = pick(rng, config.crash_targets);
        break;
      case FaultKind::kProbeDropout:
        // An empty target means every probe; bias towards single nodes
        // when targets are known.
        if (!config.probe_targets.empty() && rng.bernoulli(0.75)) {
          fault.target = pick(rng, config.probe_targets);
        }
        break;
      case FaultKind::kSampleDelay:
      case FaultKind::kAttestationSlowVerify:
        fault.delay = Duration::micros(
            rng.uniform_int(1, std::max<std::int64_t>(
                                   config.max_delay.micros_count(), 1)));
        break;
      case FaultKind::kSchedulerCrash:
        fault.target = pick(rng, config.scheduler_targets);
        break;
      case FaultKind::kLeaseExpiry:
        fault.target = pick(rng, config.lease_targets);
        break;
      case FaultKind::kTsdbShardWriteError:
      case FaultKind::kTsdbShardStaleReads:
        fault.target = pick(rng, config.tsdb_shard_targets);
        break;
      default:
        // kSplitBrainWindow, the dropouts, database-wide TSDB kinds,
        // watch disconnects, verifier outage and storms are untargeted.
        break;
    }
    plan.faults.push_back(std::move(fault));
  }
  return plan;
}

FaultInjector::FaultInjector(Simulation& sim) : sim_(&sim) {}

void FaultInjector::on_inject(FaultKind kind, Handler handler) {
  SGXO_CHECK_MSG(static_cast<bool>(handler), "null inject handler");
  inject_handlers_[kind] = std::move(handler);
}

void FaultInjector::on_heal(FaultKind kind, Handler handler) {
  SGXO_CHECK_MSG(static_cast<bool>(handler), "null heal handler");
  heal_handlers_[kind] = std::move(handler);
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultSpec& fault : plan.faults) {
    sim_->schedule_after(fault.at, [this, fault] { inject(fault); });
    if (fault.duration > Duration{}) {
      sim_->schedule_after(fault.at + fault.duration,
                           [this, fault] { heal(fault); });
    }
  }
}

void FaultInjector::inject(const FaultSpec& spec) {
  ++injected_;
  const int overlap = active_[Key{spec.kind, spec.target}]++;
  if (overlap > 0) return;  // already active for this target: no new edge
  const auto it = inject_handlers_.find(spec.kind);
  if (it != inject_handlers_.end()) it->second(spec);
}

void FaultInjector::heal(const FaultSpec& spec) {
  ++healed_;
  const Key key{spec.kind, spec.target};
  const auto count_it = active_.find(key);
  SGXO_CHECK_MSG(count_it != active_.end() && count_it->second > 0,
                 "healing a fault that was never injected");
  if (--count_it->second > 0) return;  // an overlapping fault is still on
  active_.erase(count_it);
  const auto it = heal_handlers_.find(spec.kind);
  if (it != heal_handlers_.end()) it->second(spec);
}

bool FaultInjector::active(FaultKind kind, const std::string& target) const {
  const auto it = active_.find(Key{kind, target});
  return it != active_.end() && it->second > 0;
}

std::size_t FaultInjector::active_count() const {
  std::size_t total = 0;
  for (const auto& [key, count] : active_) {
    total += static_cast<std::size_t>(count);
  }
  return total;
}

}  // namespace sgxo::sim
