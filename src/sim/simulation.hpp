// Deterministic discrete-event simulation engine.
//
// Every cluster component (Kubelet, scheduler loop, metric probes, job
// lifecycles) runs as callbacks on a single virtual clock. Events at equal
// timestamps fire in scheduling order (FIFO tie-break), which makes whole
// experiments bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace sgxo::sim {

/// Handle for cancelling a scheduled event.
class EventId {
 public:
  constexpr EventId() = default;

  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class Simulation;
  constexpr explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (>= now).
  EventId schedule_at(TimePoint at, Callback cb);
  /// Schedules `cb` to run `delay` (>= 0) after the current time.
  EventId schedule_after(Duration delay, Callback cb);
  /// Schedules `cb` every `period` (> 0), first firing after `initial_delay`.
  /// Repeating events keep firing until cancelled or the run ends.
  EventId schedule_every(Duration initial_delay, Duration period, Callback cb);

  /// Cancels a pending event. Returns false if it already fired / was
  /// cancelled. Cancelling a repeating event stops future occurrences.
  bool cancel(EventId id);

  /// Runs until the event queue drains. Throws ContractViolation if more
  /// than `max_events` fire (runaway guard, e.g. a repeating timer that is
  /// never cancelled must be bounded by run_until instead).
  void run(std::uint64_t max_events = 100'000'000);

  /// Runs events with time <= deadline; the clock ends at `deadline` even if
  /// the queue drained earlier.
  void run_until(TimePoint deadline);

  /// True if nothing is pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t fired_events() const { return fired_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq = 0;      // FIFO tie-break + cancellation handle
    Duration period;            // zero = one-shot
    Callback cb;

    // Min-heap ordering: earliest time first, then lowest sequence number.
    [[nodiscard]] bool after(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const { return a.after(b); }
  };

  EventId push(TimePoint at, Duration period, Callback cb);
  /// Pops and fires one event; returns false if the queue is empty.
  bool step();

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryCompare> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted insertion not needed; small
};

}  // namespace sgxo::sim
