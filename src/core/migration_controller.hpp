// EPC defragmentation through enclave live migration — the integration of
// secure enclave migration into the orchestrator that the paper names as
// a future research direction ("towards a globally optimized EPC
// utilization through the migration of enclaves", §VII/§VIII).
//
// The controller watches the pending queue. When the oldest pending SGX
// pod fits *no* node — not because the cluster lacks total EPC, but
// because free pages are fragmented across nodes — it migrates the
// smallest running enclave that makes the pod fit: the victim moves to the
// node with room for it, compacting free EPC on its source node.
#pragma once

#include <cstdint>

#include "orch/api_server.hpp"
#include "orch/scheduler_framework.hpp"
#include "sgx/migration.hpp"
#include "sgx/perf_model.hpp"
#include "sim/simulation.hpp"

namespace sgxo::core {

class MigrationController {
 public:
  MigrationController(sim::Simulation& sim, orch::ApiServer& api,
                      const sgx::PerfModel& perf,
                      Duration period = Duration::seconds(30));
  ~MigrationController();

  MigrationController(const MigrationController&) = delete;
  MigrationController& operator=(const MigrationController&) = delete;

  void start();
  void stop();

  /// One reconciliation pass; returns the number of migrations performed
  /// (at most one per pass — migration is expensive, so the controller
  /// stays conservative).
  std::size_t run_once();

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] sgx::MigrationService& service() { return service_; }

 private:
  struct Plan {
    cluster::PodName victim;
    cluster::NodeName from;
    cluster::NodeName to;
  };

  /// Finds a single migration that makes `blocked` schedulable, if any.
  [[nodiscard]] std::optional<Plan> plan_for(
      const cluster::PodSpec& blocked,
      const std::vector<orch::NodeView>& views) const;

  sim::Simulation* sim_;
  orch::ApiServer* api_;
  sgx::MigrationService service_;
  Duration period_;
  sim::EventId timer_;
  std::uint64_t migrations_ = 0;
};

}  // namespace sgxo::core
