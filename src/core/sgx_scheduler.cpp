#include "core/sgx_scheduler.hpp"

#include <algorithm>
#include <set>

#include "orch/default_scheduler.hpp"

namespace sgxo::core {

std::string SgxAwareScheduler::default_name(PlacementPolicy policy) {
  return std::string("sgx-") + to_string(policy);
}

namespace {

std::string resolve_name(const SgxSchedulerConfig& config) {
  return config.name.empty() ? SgxAwareScheduler::default_name(config.policy)
                             : config.name;
}

}  // namespace

SgxAwareScheduler::SgxAwareScheduler(sim::Simulation& sim,
                                     orch::ApiServer& api,
                                     const tsdb::Database& db,
                                     SgxSchedulerConfig config)
    : Scheduler(sim, api, resolve_name(config), config.period),
      config_(std::move(config)),
      metrics_(db, config_.metrics_window) {
  if (!config_.identity.empty()) set_identity(config_.identity);
  if (config_.shared_state.has_value()) {
    enable_shared_state(*config_.shared_state);
  }
}

std::vector<orch::NodeView> SgxAwareScheduler::collect_views() {
  // Start from the request-based view: capacities plus the device-plugin
  // accounting column (epc_requested) and request-based usage.
  std::vector<orch::NodeView> views = orch::request_based_views(api());

  const TimePoint now = sim().now();

  // Graceful degradation: a metrics pipeline that has stopped producing
  // samples (probe outage, TSDB write failures, stale replica) must not
  // be trusted — a window full of dead pods' last samples, with every
  // live pod missing, both over- and under-estimates. Past the staleness
  // threshold this cycle schedules on declared requests alone, exactly
  // like the Kubernetes default scheduler (the safe baseline).
  if (config_.stale_metrics_threshold > Duration{}) {
    const std::optional<Duration> age = metrics_.staleness(now);
    if (age.has_value() && *age > config_.stale_metrics_threshold) {
      ++degraded_cycles_;
      return views;
    }
  }
  const auto epc_measured = metrics_.epc_per_pod(now);
  const auto mem_measured = metrics_.memory_per_pod(now);

  for (orch::NodeView& view : views) {
    // Pods the control plane currently assigns to this node (straight from
    // the pods-by-node index).
    orch::PodFilter on_node;
    on_node.node = view.name;
    const std::vector<const orch::PodRecord*> assigned =
        api().list_pods(on_node);

    // Replace the request-based estimate with measurement-informed usage.
    Bytes memory_used{};
    Pages epc_used{};
    std::set<cluster::PodName> measured_pods;

    for (const ClusterMetrics::PodUsage& usage : epc_measured) {
      if (usage.node != view.name) continue;
      epc_used += Pages::ceil_from(usage.usage);
      measured_pods.insert(usage.pod);
    }
    for (const ClusterMetrics::PodUsage& usage : mem_measured) {
      if (usage.node != view.name) continue;
      memory_used += usage.usage;
      measured_pods.insert(usage.pod);
    }

    // Assigned pods not yet visible in the window contribute their
    // declared requests — "combining the two kinds of data" (§IV).
    for (const orch::PodRecord* record : assigned) {
      if (measured_pods.find(record->spec.name) != measured_pods.end()) {
        continue;
      }
      const cluster::ResourceAmounts request = record->spec.total_requests();
      memory_used += request.memory;
      epc_used += request.epc_pages;
    }

    view.memory_used = memory_used;
    view.epc_used = epc_used;
    // view.epc_requested stays request-based: it mirrors the device
    // plugin's hard page accounting.
  }
  return views;
}

std::optional<cluster::NodeName> SgxAwareScheduler::select_node(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& feasible,
    const std::vector<orch::NodeView>& all) {
  switch (config_.policy) {
    case PlacementPolicy::kBinpack:
      return binpack_select(pod, feasible);
    case PlacementPolicy::kSpread:
      return spread_select(pod, feasible, all);
  }
  return std::nullopt;
}

void SgxAwareScheduler::on_unschedulable(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& all) {
  if (!config_.enable_preemption || pod.priority <= 0) return;
  const cluster::ResourceAmounts needed = pod.total_requests();

  // Per node, collect strictly-lower-priority victims (cheapest first:
  // lowest priority, then smallest footprint) and check whether evicting
  // a prefix of them makes the pod fit. The node needing the fewest
  // victims wins; ties break by name.
  struct Candidate {
    cluster::NodeName node;
    std::vector<cluster::PodName> victims;
  };
  std::optional<Candidate> best;

  for (const orch::NodeView& view : all) {
    if (pod.wants_sgx() && !view.sgx_capable) continue;
    if (!pod.node_selector.empty() && pod.node_selector != view.name) {
      continue;
    }

    struct Victim {
      cluster::PodName name;
      int priority;
      cluster::ResourceAmounts request;
    };
    std::vector<Victim> victims;
    orch::PodFilter on_node;
    on_node.node = view.name;
    for (const orch::PodRecord* record : api().list_pods(on_node)) {
      if (record->spec.priority >= pod.priority) continue;
      victims.push_back(Victim{record->spec.name, record->spec.priority,
                               record->spec.total_requests()});
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim& a, const Victim& b) {
                if (a.priority != b.priority) return a.priority < b.priority;
                if (a.request.epc_pages != b.request.epc_pages) {
                  return a.request.epc_pages < b.request.epc_pages;
                }
                return a.request.memory < b.request.memory;
              });

    orch::NodeView hypothetical = view;
    std::vector<cluster::PodName> chosen;
    for (const Victim& victim : victims) {
      if (orch::fits(pod, hypothetical)) break;
      hypothetical.memory_used =
          hypothetical.memory_used >= victim.request.memory
              ? hypothetical.memory_used - victim.request.memory
              : Bytes{0};
      hypothetical.epc_used =
          hypothetical.epc_used >= victim.request.epc_pages
              ? hypothetical.epc_used - victim.request.epc_pages
              : Pages{0};
      hypothetical.epc_requested =
          hypothetical.epc_requested >= victim.request.epc_pages
              ? hypothetical.epc_requested - victim.request.epc_pages
              : Pages{0};
      chosen.push_back(victim.name);
    }
    if (!orch::fits(pod, hypothetical)) continue;  // even total eviction fails
    if (!best || chosen.size() < best->victims.size() ||
        (chosen.size() == best->victims.size() && view.name < best->node)) {
      best = Candidate{view.name, std::move(chosen)};
    }
  }

  if (!best || best->victims.empty()) return;
  for (const cluster::PodName& victim : best->victims) {
    api().evict(victim, "Preempted by higher-priority pod " + pod.name);
    ++preemptions_;
  }
}

}  // namespace sgxo::core
