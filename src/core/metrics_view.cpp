#include "core/metrics_view.hpp"

#include "common/error.hpp"

namespace sgxo::core {

namespace {

std::string window_literal(Duration window) {
  return std::to_string(window.micros_count() / 1'000'000) + "s";
}

// The Listing-1 statements with the window as a $window parameter, so one
// prepared AST serves any window bound at execute time.
std::string inner_text(const std::string& measurement) {
  return "SELECT MAX(value) AS usage FROM \"" + measurement +
         "\" WHERE value <> 0 AND time >= now() - $window"
         " GROUP BY pod_name, nodename";
}

std::string outer_text(const std::string& measurement) {
  return "SELECT SUM(usage) AS usage FROM (" + inner_text(measurement) +
         ") GROUP BY nodename";
}

}  // namespace

ClusterMetrics::ClusterMetrics(const tsdb::Database& db, Duration window)
    : db_(&db),
      window_(window),
      window_binding_({{"window", window}}),
      epc_inner_(tsdb::ql::PreparedQuery::prepare(inner_text("sgx/epc"))),
      epc_outer_(tsdb::ql::PreparedQuery::prepare(outer_text("sgx/epc"))),
      memory_inner_(
          tsdb::ql::PreparedQuery::prepare(inner_text("memory/usage"))),
      memory_outer_(
          tsdb::ql::PreparedQuery::prepare(outer_text("memory/usage"))) {
  SGXO_CHECK_MSG(window_ >= Duration::seconds(1),
                 "metrics window below 1 s would render as 0s in InfluxQL");
}

std::string ClusterMetrics::listing1_query() const {
  return "SELECT SUM(epc) AS epc FROM (SELECT MAX(value) AS epc FROM "
         "\"sgx/epc\" WHERE value <> 0 AND time >= now() - " +
         window_literal(window_) +
         " GROUP BY pod_name, nodename) GROUP BY nodename";
}

tsdb::ql::ResultSet ClusterMetrics::run(const tsdb::ql::PreparedQuery& query,
                                        TimePoint now) const {
  tsdb::ql::ExecStats stats;
  tsdb::ql::ExecOptions options;
  options.stats = &stats;
  tsdb::ql::ResultSet result =
      query.execute(*db_, now, window_binding_, options);
  last_stats_ = QueryDiagnostics{};
  for (const tsdb::ql::ShardScanStats& shard : stats.shards) {
    if (shard.series == 0 && shard.points == 0) continue;
    ++last_stats_.shards_scanned;
    last_stats_.series_scanned += shard.series;
    last_stats_.points_scanned += shard.points;
  }
  last_stats_.rollup_level_us = stats.rollup_level_us;
  return result;
}

std::vector<ClusterMetrics::PodUsage> ClusterMetrics::per_pod(
    const tsdb::ql::PreparedQuery& query, TimePoint now) const {
  const tsdb::ql::ResultSet result = run(query, now);
  std::vector<PodUsage> usages;
  usages.reserve(result.rows.size());
  for (const tsdb::ql::Row& row : result.rows) {
    PodUsage usage;
    const auto pod_it = row.tags.find("pod_name");
    const auto node_it = row.tags.find("nodename");
    usage.pod = pod_it == row.tags.end() ? "" : pod_it->second;
    usage.node = node_it == row.tags.end() ? "" : node_it->second;
    usage.usage =
        Bytes{static_cast<std::uint64_t>(row.field("usage"))};
    usages.push_back(std::move(usage));
  }
  return usages;
}

std::map<cluster::NodeName, Bytes> ClusterMetrics::per_node(
    const tsdb::ql::PreparedQuery& query, TimePoint now) const {
  const tsdb::ql::ResultSet result = run(query, now);
  std::map<cluster::NodeName, Bytes> usage;
  for (const tsdb::ql::Row& row : result.rows) {
    const auto node_it = row.tags.find("nodename");
    const std::string node =
        node_it == row.tags.end() ? "" : node_it->second;
    usage[node] = Bytes{static_cast<std::uint64_t>(row.field("usage"))};
  }
  return usage;
}

std::optional<Duration> ClusterMetrics::staleness(TimePoint now) const {
  std::optional<TimePoint> newest;
  for (const char* measurement : {"sgx/epc", "memory/usage"}) {
    const std::optional<TimePoint> t = db_->newest_time(measurement);
    if (t.has_value() && (!newest.has_value() || *t > *newest)) newest = t;
  }
  if (!newest.has_value()) return std::nullopt;
  return *newest >= now ? Duration{} : now - *newest;
}

std::vector<ClusterMetrics::PodUsage> ClusterMetrics::epc_per_pod(
    TimePoint now) const {
  return per_pod(epc_inner_, now);
}

std::map<cluster::NodeName, Bytes> ClusterMetrics::epc_per_node(
    TimePoint now) const {
  return per_node(epc_outer_, now);
}

std::vector<ClusterMetrics::PodUsage> ClusterMetrics::memory_per_pod(
    TimePoint now) const {
  return per_pod(memory_inner_, now);
}

std::map<cluster::NodeName, Bytes> ClusterMetrics::memory_per_node(
    TimePoint now) const {
  return per_node(memory_outer_, now);
}

}  // namespace sgxo::core
