#include "core/migration_controller.hpp"

#include <algorithm>

#include "orch/default_scheduler.hpp"

namespace sgxo::core {

MigrationController::MigrationController(sim::Simulation& sim,
                                         orch::ApiServer& api,
                                         const sgx::PerfModel& perf,
                                         Duration period)
    : sim_(&sim), api_(&api), service_(perf), period_(period) {
  SGXO_CHECK(period_ > Duration{});
}

MigrationController::~MigrationController() { stop(); }

void MigrationController::start() {
  if (timer_.valid()) return;
  timer_ = sim_->schedule_every(period_, period_, [this] { run_once(); });
}

void MigrationController::stop() {
  if (timer_.valid()) {
    sim_->cancel(timer_);
    timer_ = sim::EventId{};
  }
}

std::optional<MigrationController::Plan> MigrationController::plan_for(
    const cluster::PodSpec& blocked,
    const std::vector<orch::NodeView>& views) const {
  const Pages needed = blocked.total_requests().epc_pages;

  std::optional<Plan> best;
  Pages best_victim_pages{UINT64_MAX};

  for (const orch::NodeView& source : views) {
    if (!source.sgx_capable) continue;
    if (!blocked.node_selector.empty() &&
        blocked.node_selector != source.name) {
      continue;  // the blocked pod can only ever land on its selected node
    }
    const Pages source_free = source.epc_capacity >= source.epc_requested
                                  ? source.epc_capacity - source.epc_requested
                                  : Pages{0};
    if (source_free >= needed) continue;  // already fits; not our problem
    const Pages deficit = needed - source_free;

    // Candidate victims on this node: running, migratable SGX pods whose
    // departure closes the deficit.
    const orch::ApiServer::NodeEntry* source_entry =
        api_->find_node(source.name);
    orch::PodFilter running_here;
    running_here.phase = cluster::PodPhase::kRunning;
    running_here.node = source.name;
    for (const orch::PodRecord* record : api_->list_pods(running_here)) {
      const cluster::PodName& victim = record->spec.name;
      if (!record->spec.wants_sgx()) continue;
      if (!record->spec.node_selector.empty()) continue;  // pinned pods stay
      if (!source_entry->kubelet->pod_migratable(victim)) continue;
      const Pages victim_pages = record->spec.total_requests().epc_pages;
      if (victim_pages < deficit) continue;       // would not free enough
      if (victim_pages >= best_victim_pages) continue;  // bigger than best

      // A target that can absorb the victim.
      for (const orch::NodeView& target : views) {
        if (!target.sgx_capable || target.name == source.name) continue;
        const Pages target_free =
            target.epc_capacity >= target.epc_requested
                ? target.epc_capacity - target.epc_requested
                : Pages{0};
        if (target_free < victim_pages) continue;
        best = Plan{victim, source.name, target.name};
        best_victim_pages = victim_pages;
        break;
      }
    }
  }
  return best;
}

std::size_t MigrationController::run_once() {
  // The oldest pending SGX pod drives the decision (FCFS, as everywhere).
  const std::vector<orch::NodeView> views =
      orch::request_based_views(*api_);

  cluster::PodName blocked_name;
  orch::PodFilter pending;
  pending.phase = cluster::PodPhase::kPending;
  pending.scheduler = api_->default_scheduler();
  for (const orch::PodRecord* record : api_->list_pods(pending)) {
    const cluster::PodName& name = record->spec.name;
    const cluster::PodSpec& spec = record->spec;
    if (!spec.wants_sgx()) continue;
    const bool fits_somewhere =
        std::any_of(views.begin(), views.end(),
                    [&](const orch::NodeView& view) {
                      return orch::fits(spec, view);
                    });
    if (!fits_somewhere) {
      blocked_name = name;
      break;  // FCFS: only the oldest blocked pod triggers migration
    }
  }
  if (blocked_name.empty()) return 0;

  const std::optional<Plan> plan =
      plan_for(api_->pod(blocked_name).spec, views);
  if (!plan.has_value()) return 0;

  api_->migrate(plan->victim, plan->to, service_);
  ++migrations_;
  return 1;
}

}  // namespace sgxo::core
