// EPC contention monitor — operationalises the stated purpose of the
// driver's per-process ioctl (§V-E):
//
//   "This metric is helpful to identify processes that should be
//    preempted and possibly migrated, a feature especially useful in
//    scenarios of high contention."
//
// The monitor samples every SGX node's driver each period. A node is
// flagged *contended* once its EPC commitment stays above a pressure
// threshold for N consecutive samples; for flagged nodes the monitor
// ranks the resident pods by EPC footprint — the candidate list a
// preemption or migration policy would consume.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "orch/api_server.hpp"
#include "sim/simulation.hpp"

namespace sgxo::core {

struct ContentionReport {
  struct Candidate {
    cluster::PodName pod;
    Pages pages{};
  };
  struct NodeReport {
    cluster::NodeName node;
    /// committed / total EPC at the last sample.
    double pressure = 0.0;
    /// Samples in a row at or above the threshold.
    int consecutive_hot = 0;
    bool contended = false;
    /// Pods by EPC footprint, biggest first (preemption/migration order).
    std::vector<Candidate> candidates;
  };
  TimePoint sampled_at;
  std::vector<NodeReport> nodes;

  [[nodiscard]] bool any_contended() const;
  [[nodiscard]] const NodeReport* find(const cluster::NodeName& node) const;
};

class ContentionMonitor {
 public:
  ContentionMonitor(sim::Simulation& sim, orch::ApiServer& api,
                    double pressure_threshold = 0.9,
                    int consecutive_samples = 3,
                    Duration period = Duration::seconds(10));
  ~ContentionMonitor();

  ContentionMonitor(const ContentionMonitor&) = delete;
  ContentionMonitor& operator=(const ContentionMonitor&) = delete;

  void start();
  void stop();
  /// Takes one sample immediately (also driven by the periodic timer).
  void sample_once();

  [[nodiscard]] const ContentionReport& report() const { return report_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  sim::Simulation* sim_;
  orch::ApiServer* api_;
  double threshold_;
  int required_consecutive_;
  Duration period_;
  sim::EventId timer_;
  std::map<cluster::NodeName, int> hot_streak_;
  ContentionReport report_;
  std::uint64_t samples_ = 0;
};

}  // namespace sgxo::core
