// The SGX-aware scheduler — the paper's primary contribution (§IV, §V-B).
//
// Unlike the Kubernetes default scheduler, which only trusts the statically
// declared requests, this scheduler combines:
//   * the pending jobs' declared requests (standard memory + EPC pages),
//   * live sliding-window usage measurements from the time-series database
//     (Heapster for memory, the SGX probe for EPC — queried through the
//     InfluxQL engine, Listing 1),
//   * the device plugin's page accounting (the hard no-over-commitment
//     floor for the EPC).
//
// Per node, the usage estimate of each assigned pod is its measured usage
// when the window contains a sample for it, and its declared request until
// then (bindings lag the probes by up to one probe period). Samples of
// recently dead pods still inside the window count as usage, exactly as
// Listing 1 would report them.
//
// Non-preemptive; pods stay in the API server's FCFS pending queue until a
// cycle finds room. Packaged to run as a pod itself, multiple instances
// (binpack + spread + the default) can operate side by side, each pulling
// only the pods that name it (§V-B).
#pragma once

#include <optional>
#include <string>

#include "core/metrics_view.hpp"
#include "core/policies.hpp"
#include "orch/scheduler_framework.hpp"
#include "tsdb/model.hpp"

namespace sgxo::core {

struct SgxSchedulerConfig {
  PlacementPolicy policy = PlacementPolicy::kBinpack;
  Duration period = Duration::seconds(5);
  /// Sliding window of the usage queries (25 s in Listing 1).
  Duration metrics_window = Duration::seconds(25);
  /// Scheduler name pods select; empty derives "sgx-binpack"/"sgx-spread".
  std::string name;
  /// Replica identity for leader election (HA deployments run N replicas
  /// sharing a name). Empty = the name itself.
  std::string identity;
  /// Shared-state mode (Omega-style): when set, this replica runs as one
  /// always-active shard worker of a multi-scheduler fleet — no leader
  /// lease; binds go out as batched transactions. Mutually exclusive with
  /// enabling leader election on the instance.
  std::optional<orch::SharedStateConfig> shared_state;
  /// Priority preemption under contention (extension; the paper's
  /// per-process EPC ioctl exists "to identify processes that should be
  /// preempted", §V-E): a pending pod that fits nowhere may evict
  /// strictly-lower-priority pods from one node. Off by default — the
  /// paper's scheduler is non-preemptive.
  bool enable_preemption = false;
  /// Graceful degradation: when the newest metrics sample is older than
  /// this, the cycle falls back from measured usage to the declared
  /// requests (the default scheduler's view) instead of trusting a dead
  /// metrics pipeline. With a healthy 10 s probe period staleness stays
  /// under one period, so the default only trips on real outages.
  /// Zero disables the fallback (always trust the window).
  Duration stale_metrics_threshold = Duration::seconds(60);
};

class SgxAwareScheduler final : public orch::Scheduler {
 public:
  SgxAwareScheduler(sim::Simulation& sim, orch::ApiServer& api,
                    const tsdb::Database& db, SgxSchedulerConfig config = {});

  [[nodiscard]] PlacementPolicy policy() const { return config_.policy; }
  [[nodiscard]] const ClusterMetrics& metrics() const { return metrics_; }
  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }
  /// Cycles that ran on declared requests because the metrics window was
  /// stale past the configured threshold.
  [[nodiscard]] std::uint64_t degraded_cycles() const override {
    return degraded_cycles_;
  }

  [[nodiscard]] static std::string default_name(PlacementPolicy policy);

 protected:
  [[nodiscard]] std::vector<orch::NodeView> collect_views() override;
  [[nodiscard]] std::optional<cluster::NodeName> select_node(
      const cluster::PodSpec& pod,
      const std::vector<orch::NodeView>& feasible,
      const std::vector<orch::NodeView>& all) override;

  /// Preemption: evicts the cheapest set of strictly-lower-priority pods
  /// on a single node that makes `pod` fit there; the pod itself binds on
  /// a following cycle (non-preemptive placement is preserved within a
  /// cycle).
  void on_unschedulable(const cluster::PodSpec& pod,
                        const std::vector<orch::NodeView>& all) override;

 private:
  SgxSchedulerConfig config_;
  ClusterMetrics metrics_;
  std::uint64_t preemptions_ = 0;
  std::uint64_t degraded_cycles_ = 0;
};

}  // namespace sgxo::core
