#include "core/policies.hpp"

#include <algorithm>
#include <limits>

#include "common/stats.hpp"

namespace sgxo::core {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBinpack: return "binpack";
    case PlacementPolicy::kSpread: return "spread";
  }
  return "?";
}

namespace {

/// Consistent binpack node order: lexicographic by name, with SGX nodes
/// pushed to the back for standard jobs.
bool binpack_before(const orch::NodeView& a, const orch::NodeView& b,
                    bool standard_job) {
  if (standard_job && a.sgx_capable != b.sgx_capable) {
    return !a.sgx_capable;
  }
  return a.name < b.name;
}

/// For standard jobs: drop SGX nodes from the candidate set when at least
/// one non-SGX node is feasible (both policies preserve EPC this way).
std::vector<orch::NodeView> preferred_candidates(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& feasible) {
  if (pod.wants_sgx()) return feasible;
  std::vector<orch::NodeView> non_sgx;
  std::copy_if(feasible.begin(), feasible.end(), std::back_inserter(non_sgx),
               [](const orch::NodeView& v) { return !v.sgx_capable; });
  return non_sgx.empty() ? feasible : non_sgx;
}

/// The load the spread policy balances: the job's contended resource —
/// EPC fraction for SGX jobs, standard-memory fraction otherwise.
double load_of(const orch::NodeView& view, bool sgx_job) {
  return sgx_job ? view.epc_load() : view.memory_load();
}

/// Standard deviation of load across the relevant nodes if `pod` were
/// placed on `candidate`. For SGX jobs only SGX-capable nodes carry the
/// balanced resource; for standard jobs every schedulable node does.
double stddev_after_placement(const cluster::PodSpec& pod,
                              const cluster::NodeName& candidate,
                              const std::vector<orch::NodeView>& all) {
  const bool sgx_job = pod.wants_sgx();
  const cluster::ResourceAmounts request = pod.total_requests();
  std::vector<double> loads;
  loads.reserve(all.size());
  for (const orch::NodeView& view : all) {
    if (sgx_job && !view.sgx_capable) continue;
    orch::NodeView adjusted = view;
    if (view.name == candidate) {
      adjusted.memory_used += request.memory;
      adjusted.epc_used += request.epc_pages;
    }
    loads.push_back(load_of(adjusted, sgx_job));
  }
  return population_stddev(loads);
}

}  // namespace

std::optional<cluster::NodeName> binpack_select(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& feasible) {
  if (feasible.empty()) return std::nullopt;
  const bool standard_job = !pod.wants_sgx();
  const auto first = std::min_element(
      feasible.begin(), feasible.end(),
      [&](const orch::NodeView& a, const orch::NodeView& b) {
        return binpack_before(a, b, standard_job);
      });
  return first->name;
}

std::optional<cluster::NodeName> spread_select(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& feasible,
    const std::vector<orch::NodeView>& all) {
  const std::vector<orch::NodeView> candidates =
      preferred_candidates(pod, feasible);
  if (candidates.empty()) return std::nullopt;

  std::optional<cluster::NodeName> best;
  double best_stddev = std::numeric_limits<double>::infinity();
  for (const orch::NodeView& view : candidates) {
    const double stddev = stddev_after_placement(pod, view.name, all);
    if (stddev < best_stddev ||
        (stddev == best_stddev && (!best || view.name < *best))) {
      best_stddev = stddev;
      best = view.name;
    }
  }
  return best;
}

}  // namespace sgxo::core
