// The two placement policies of the SGX-aware scheduler (paper §IV).
//
// binpack — fit as many jobs as possible on the same node, advancing to
// the next node only when resources become insufficient. Node order is
// kept consistent by always sorting the same way; for standard jobs,
// SGX-capable nodes are sorted to the end of the list so their scarce EPC
// is preserved for SGX jobs.
//
// spread — even out load by choosing the job-node combination that yields
// the smallest standard deviation of load across the nodes. Like binpack,
// it resorts to SGX-capable nodes for standard jobs only when there is no
// other way to run the job.
#pragma once

#include <optional>
#include <vector>

#include "cluster/pod.hpp"
#include "orch/scheduler_framework.hpp"

namespace sgxo::core {

enum class PlacementPolicy { kBinpack, kSpread };

[[nodiscard]] const char* to_string(PlacementPolicy policy);

/// binpack choice among feasible nodes (all must pass orch::fits).
[[nodiscard]] std::optional<cluster::NodeName> binpack_select(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& feasible);

/// spread choice: needs the cluster-wide view to evaluate the load
/// standard deviation each candidate placement would produce.
[[nodiscard]] std::optional<cluster::NodeName> spread_select(
    const cluster::PodSpec& pod, const std::vector<orch::NodeView>& feasible,
    const std::vector<orch::NodeView>& all);

}  // namespace sgxo::core
