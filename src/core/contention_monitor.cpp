#include "core/contention_monitor.hpp"

#include <algorithm>

namespace sgxo::core {

bool ContentionReport::any_contended() const {
  return std::any_of(nodes.begin(), nodes.end(),
                     [](const NodeReport& n) { return n.contended; });
}

const ContentionReport::NodeReport* ContentionReport::find(
    const cluster::NodeName& node) const {
  const auto it = std::find_if(
      nodes.begin(), nodes.end(),
      [&](const NodeReport& n) { return n.node == node; });
  return it == nodes.end() ? nullptr : &*it;
}

ContentionMonitor::ContentionMonitor(sim::Simulation& sim,
                                     orch::ApiServer& api,
                                     double pressure_threshold,
                                     int consecutive_samples, Duration period)
    : sim_(&sim),
      api_(&api),
      threshold_(pressure_threshold),
      required_consecutive_(consecutive_samples),
      period_(period) {
  SGXO_CHECK(threshold_ > 0.0 && threshold_ <= 1.0);
  SGXO_CHECK(required_consecutive_ >= 1);
  SGXO_CHECK(period_ > Duration{});
}

ContentionMonitor::~ContentionMonitor() { stop(); }

void ContentionMonitor::start() {
  if (timer_.valid()) return;
  timer_ = sim_->schedule_every(period_, period_, [this] { sample_once(); });
}

void ContentionMonitor::stop() {
  if (timer_.valid()) {
    sim_->cancel(timer_);
    timer_ = sim::EventId{};
  }
}

void ContentionMonitor::sample_once() {
  ++samples_;
  report_ = ContentionReport{};
  report_.sampled_at = sim_->now();

  for (const orch::ApiServer::NodeEntry& entry : api_->all_nodes()) {
    if (!entry.node->has_sgx()) continue;
    const sgx::Driver& driver = *entry.node->driver();

    ContentionReport::NodeReport node_report;
    node_report.node = entry.node->name();
    node_report.pressure = driver.epc().pressure();

    int& streak = hot_streak_[node_report.node];
    streak = node_report.pressure >= threshold_ ? streak + 1 : 0;
    node_report.consecutive_hot = streak;
    node_report.contended = streak >= required_consecutive_;

    if (node_report.contended) {
      // Rank resident pods by EPC footprint via the per-process ioctl,
      // biggest hog first.
      for (const cluster::PodName& pod : entry.kubelet->active_pods()) {
        Pages pages{0};
        for (const sgx::Pid pid : entry.kubelet->pod_pids(pod)) {
          pages += driver.process_pages(pid);
        }
        if (pages.count() == 0) continue;
        node_report.candidates.push_back(
            ContentionReport::Candidate{pod, pages});
      }
      std::sort(node_report.candidates.begin(), node_report.candidates.end(),
                [](const ContentionReport::Candidate& a,
                   const ContentionReport::Candidate& b) {
                  if (a.pages != b.pages) return a.pages > b.pages;
                  return a.pod < b.pod;
                });
    }
    report_.nodes.push_back(std::move(node_report));
  }
}

}  // namespace sgxo::core
