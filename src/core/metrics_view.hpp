// The scheduler's sliding-window view of cluster metrics (paper §V-C).
//
// All reads go through the InfluxQL engine, exactly as the real system
// queries InfluxDB — including the paper's Listing 1 verbatim for per-node
// EPC usage. The window (25 s in Listing 1) is configurable.
//
// The Listing-1 inner/outer statements are *prepared once* per measurement
// at construction and re-executed every scheduling cycle with only now()
// and the $window parameter bound — no string building, lexing or parsing
// on the scheduler hot path.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/pod.hpp"
#include "cluster/resources.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "tsdb/model.hpp"
#include "tsdb/ql/prepared.hpp"

namespace sgxo::core {

class ClusterMetrics {
 public:
  explicit ClusterMetrics(const tsdb::Database& db,
                          Duration window = Duration::seconds(25));

  [[nodiscard]] Duration window() const { return window_; }

  struct PodUsage {
    cluster::PodName pod;
    cluster::NodeName node;
    Bytes usage{};
  };

  /// Per-pod EPC usage over the window: the inner query of Listing 1
  /// (MAX(value) per pod_name, nodename with value <> 0).
  [[nodiscard]] std::vector<PodUsage> epc_per_pod(TimePoint now) const;

  /// Per-node EPC usage over the window — the paper's Listing 1, run
  /// verbatim through the query engine:
  ///   SELECT SUM(epc) AS epc FROM
  ///     (SELECT MAX(value) AS epc FROM "sgx/epc"
  ///      WHERE value <> 0 AND time >= now() - <window>
  ///      GROUP BY pod_name, nodename)
  ///   GROUP BY nodename
  [[nodiscard]] std::map<cluster::NodeName, Bytes> epc_per_node(
      TimePoint now) const;

  /// The equivalent queries over Heapster's standard-memory measurement.
  [[nodiscard]] std::vector<PodUsage> memory_per_pod(TimePoint now) const;
  [[nodiscard]] std::map<cluster::NodeName, Bytes> memory_per_node(
      TimePoint now) const;

  /// The exact Listing-1 text executed by epc_per_node (for inspection).
  [[nodiscard]] std::string listing1_query() const;

  /// Age of the newest visible sample across both monitored measurements
  /// (EPC + standard memory); nullopt while the pipeline has produced no
  /// sample at all. The scheduler compares this against its staleness
  /// threshold to decide when to stop trusting measurements.
  [[nodiscard]] std::optional<Duration> staleness(TimePoint now) const;

  /// Telemetry of the most recent query this view executed: how many TSDB
  /// shards and series the fan-out touched, how many points (or rollup
  /// buckets) it folded, and which rollup level served it (0 = raw).
  struct QueryDiagnostics {
    std::size_t shards_scanned = 0;
    std::size_t series_scanned = 0;
    std::size_t points_scanned = 0;
    std::int64_t rollup_level_us = 0;
  };
  [[nodiscard]] const QueryDiagnostics& last_query_stats() const {
    return last_stats_;
  }

 private:
  [[nodiscard]] std::vector<PodUsage> per_pod(
      const tsdb::ql::PreparedQuery& query, TimePoint now) const;
  [[nodiscard]] std::map<cluster::NodeName, Bytes> per_node(
      const tsdb::ql::PreparedQuery& query, TimePoint now) const;

  [[nodiscard]] tsdb::ql::ResultSet run(const tsdb::ql::PreparedQuery& query,
                                        TimePoint now) const;

  const tsdb::Database* db_;
  Duration window_;
  tsdb::ql::QueryParams window_binding_;
  tsdb::ql::PreparedQuery epc_inner_;
  tsdb::ql::PreparedQuery epc_outer_;
  tsdb::ql::PreparedQuery memory_inner_;
  tsdb::ql::PreparedQuery memory_outer_;
  mutable QueryDiagnostics last_stats_;
};

}  // namespace sgxo::core
