// Malicious containers (paper §VI-F): pods that declare the minimum
// possible EPC footprint — 1 page as both request and limit — but actually
// allocate a large share of a node's EPC (up to 50 %). Without driver-level
// limit enforcement they squat on the EPC and starve honest pods; with
// enforcement their enclave initialisation is denied and they are killed
// right after launch.
#pragma once

#include <string>
#include <vector>

#include "cluster/pod.hpp"
#include "common/time.hpp"
#include "sgx/epc.hpp"

namespace sgxo::workload {

struct MaliciousConfig {
  /// Fraction of the node's usable EPC the container really allocates.
  double epc_fraction = 0.5;
  /// How long the squatter stays alive (long enough to cover a replay).
  Duration duration = Duration::hours(12);
  /// EPC geometry of the targeted nodes.
  sgx::EpcConfig epc = sgx::EpcConfig::sgx1();
  std::string scheduler_name;
};

/// One malicious pod. The paper deploys as many as there are SGX-enabled
/// nodes in the cluster.
[[nodiscard]] cluster::PodSpec malicious_pod(const std::string& name,
                                             const MaliciousConfig& config);

/// `count` malicious pods named "<prefix>-1" ... "<prefix>-count".
[[nodiscard]] std::vector<cluster::PodSpec> malicious_pods(
    std::size_t count, const MaliciousConfig& config,
    const std::string& prefix = "malicious");

}  // namespace sgxo::workload
