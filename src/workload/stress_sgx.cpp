#include "workload/stress_sgx.hpp"

#include <algorithm>
#include <cctype>

#include "sgx/sdk.hpp"

namespace sgxo::workload {

const char* to_string(StressorKind kind) {
  switch (kind) {
    case StressorKind::kVm: return "vm";
    case StressorKind::kEpc: return "epc";
  }
  return "?";
}

Bytes StressPlan::total_epc_bytes() const {
  Bytes total{};
  for (const StressorSpec& spec : stressors) {
    if (spec.kind == StressorKind::kEpc) {
      total += Bytes{spec.bytes.count() *
                     static_cast<std::uint64_t>(spec.workers)};
    }
  }
  return total;
}

Bytes StressPlan::total_vm_bytes() const {
  Bytes total{};
  for (const StressorSpec& spec : stressors) {
    if (spec.kind == StressorKind::kVm) {
      total += Bytes{spec.bytes.count() *
                     static_cast<std::uint64_t>(spec.workers)};
    }
  }
  return total;
}

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw StressArgError{"stress-sgx: " + message};
}

/// stress-ng size syntax: a number with optional k/m/g suffix (binary).
Bytes parse_size(const std::string& text) {
  if (text.empty()) fail("empty size");
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (...) {
    fail("malformed size '" + text + "'");
  }
  std::uint64_t multiplier = 1;
  if (pos < text.size()) {
    if (pos + 1 != text.size()) fail("malformed size '" + text + "'");
    switch (std::tolower(static_cast<unsigned char>(text[pos]))) {
      case 'k': multiplier = 1ULL << 10; break;
      case 'm': multiplier = 1ULL << 20; break;
      case 'g': multiplier = 1ULL << 30; break;
      default: fail("unknown size suffix in '" + text + "'");
    }
  }
  return Bytes{value * multiplier};
}

/// stress-ng timeout syntax: seconds, or m/h suffix.
Duration parse_timeout(const std::string& text) {
  if (text.empty()) fail("empty timeout");
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (...) {
    fail("malformed timeout '" + text + "'");
  }
  if (pos == text.size()) return Duration::seconds(static_cast<long>(value));
  if (pos + 1 != text.size()) fail("malformed timeout '" + text + "'");
  switch (std::tolower(static_cast<unsigned char>(text[pos]))) {
    case 's': return Duration::seconds(static_cast<long>(value));
    case 'm': return Duration::minutes(static_cast<long>(value));
    case 'h': return Duration::hours(static_cast<long>(value));
    default: fail("unknown timeout suffix in '" + text + "'");
  }
}

int parse_count(const std::string& text) {
  try {
    const int n = std::stoi(text);
    if (n <= 0) fail("worker count must be positive");
    return n;
  } catch (const StressArgError&) {
    throw;
  } catch (...) {
    fail("malformed worker count '" + text + "'");
  }
}

}  // namespace

StressPlan parse_stress_args(const std::vector<std::string>& args) {
  StressPlan plan;
  std::optional<StressorSpec> vm;
  std::optional<StressorSpec> epc;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) fail("flag " + arg + " needs a value");
      return args[++i];
    };
    if (arg == "--vm") {
      if (!vm.has_value()) vm.emplace();
      vm->kind = StressorKind::kVm;
      vm->workers = parse_count(next());
    } else if (arg == "--vm-bytes") {
      if (!vm.has_value()) vm.emplace();
      vm->bytes = parse_size(next());
    } else if (arg == "--epc") {
      if (!epc.has_value()) epc.emplace();
      epc->kind = StressorKind::kEpc;
      epc->workers = parse_count(next());
    } else if (arg == "--epc-bytes") {
      if (!epc.has_value()) epc.emplace();
      epc->kind = StressorKind::kEpc;
      epc->bytes = parse_size(next());
    } else if (arg == "--timeout") {
      plan.timeout = parse_timeout(next());
    } else {
      fail("unknown flag '" + arg + "'");
    }
  }
  if (vm.has_value()) {
    if (vm->bytes.count() == 0) fail("--vm needs --vm-bytes");
    plan.stressors.push_back(*vm);
  }
  if (epc.has_value()) {
    if (epc->bytes.count() == 0) fail("--epc needs --epc-bytes");
    plan.stressors.push_back(*epc);
  }
  if (plan.stressors.empty()) fail("no stressors requested");
  return plan;
}

std::vector<StressorReport> StressRunner::run(const StressPlan& plan,
                                              sgx::Pid pid,
                                              const sgx::CgroupPath& cgroup) {
  SGXO_CHECK_MSG(plan.timeout > Duration{}, "stress plan needs a timeout");
  std::vector<StressorReport> reports;

  // Baseline iteration cost: touching one MiB of resident memory.
  constexpr double kMicrosPerMibTouched = 50.0;

  for (const StressorSpec& spec : plan.stressors) {
    for (int w = 0; w < spec.workers; ++w) {
      StressorReport report;
      report.kind = spec.kind;

      if (spec.kind == StressorKind::kVm) {
        // Plain memory: constant op rate, sub-millisecond startup.
        report.startup = perf_->standard_startup();
        const double per_op_us =
            std::max(1.0, spec.bytes.as_mib() * kMicrosPerMibTouched);
        report.elapsed = plan.timeout;
        report.bogo_ops = static_cast<std::uint64_t>(
            plan.timeout.as_millis() * 1000.0 / per_op_us);
        reports.push_back(report);
        continue;
      }

      // EPC stressor: build the enclave (Fig. 6 startup), then ecall
      // rounds whose latency scales with the node's paging slowdown.
      sgx::Sdk sdk{*driver_, *perf_};
      auto launch = sdk.launch_enclave(pid, cgroup, spec.bytes);
      report.startup =
          perf_->config().psw_startup + launch.latency;

      const Duration budget =
          plan.timeout > report.startup ? plan.timeout - report.startup
                                        : Duration{};
      const Duration per_op_native = Duration::micros(
          static_cast<std::int64_t>(std::max(
              1.0, spec.bytes.as_mib() * kMicrosPerMibTouched)));
      Duration spent{};
      while (spent < budget) {
        const Duration op = launch.enclave.ecall(per_op_native);
        spent += op;
        ++report.bogo_ops;
        if (report.bogo_ops > 100'000'000ULL) break;  // runaway guard
      }
      report.elapsed = budget;
      reports.push_back(report);
    }
  }
  return reports;
}

}  // namespace sgxo::workload
