// STRESS-SGX job materialisation (paper §VI-C).
//
// Trace jobs are run as containers executing STRESS-SGX, a fork of
// STRESS-NG: standard jobs use the original virtual-memory stressor, SGX
// jobs use the EPC stressor. The advertised request/limit comes from the
// trace's *assigned memory*; the stressor actually allocates the trace's
// *maximal memory usage* — reproducing real-world divergence between what
// users declare and what their containers do.
#pragma once

#include <string>

#include "cluster/pod.hpp"
#include "trace/job.hpp"
#include "trace/scaler.hpp"

namespace sgxo::workload {

/// Builds the pod for one trace job. `scheduler_name` routes the pod to a
/// specific scheduler instance (empty = cluster default).
///
/// `initial_usage_fraction` < 1 builds an SGX 2 dynamic-memory variant of
/// the stressor (§VI-G): the enclave commits only that fraction of its
/// peak at build time and grows/shrinks during execution. In that world
/// users declare their *typical* footprint as the request (so the
/// scheduler can pack by it) and their peak as the limit (so the driver's
/// growth hook still bounds them). On SGX 1 nodes such pods fall back to
/// committing the peak at build time.
[[nodiscard]] cluster::PodSpec stressor_pod(
    const trace::TraceJob& job, const trace::ScalingConfig& scaling,
    const std::string& scheduler_name = "",
    double initial_usage_fraction = 1.0);

/// Deterministic pod name for a trace job.
[[nodiscard]] std::string stressor_pod_name(const trace::TraceJob& job);

}  // namespace sgxo::workload
