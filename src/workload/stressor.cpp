#include "workload/stressor.hpp"

namespace sgxo::workload {

std::string stressor_pod_name(const trace::TraceJob& job) {
  return "job-" + std::to_string(job.id);
}

cluster::PodSpec stressor_pod(const trace::TraceJob& job,
                              const trace::ScalingConfig& scaling,
                              const std::string& scheduler_name,
                              double initial_usage_fraction) {
  const trace::ScaledJob scaled = trace::scale_job(job, scaling);
  const bool dynamic = initial_usage_fraction < 1.0;

  cluster::ResourceAmounts request;
  cluster::ResourceAmounts limit;
  if (job.sgx) {
    // SGX jobs advertise EPC pages (the device plugin's resource); at least
    // one page, or the pod would not be recognised as SGX-enabled.
    Pages peak_pages = Pages::ceil_from(scaled.advertised);
    if (peak_pages.count() == 0) peak_pages = Pages{1};
    Pages request_pages = peak_pages;
    if (dynamic) {
      // SGX 2 world: request the typical footprint, limit the peak.
      request_pages = Pages::ceil_from(Bytes{static_cast<std::uint64_t>(
          initial_usage_fraction *
          static_cast<double>(scaled.advertised.count()))});
      if (request_pages.count() == 0) request_pages = Pages{1};
    }
    request.epc_pages = request_pages;
    limit.epc_pages = peak_pages;
  } else {
    request.memory = scaled.advertised;
    limit.memory = scaled.advertised;
  }

  cluster::PodBehavior behavior;
  behavior.sgx = job.sgx;
  behavior.actual_usage = scaled.actual;
  behavior.duration = job.duration;
  behavior.initial_usage_fraction = dynamic ? initial_usage_fraction : 1.0;

  return cluster::make_stressor_pod(stressor_pod_name(job), request, limit,
                                    behavior, scheduler_name);
}

}  // namespace sgxo::workload
