// STRESS-SGX (paper §VI-C, reference [44]): the workload the evaluation
// actually runs — a fork of STRESS-NG where "normal jobs use the original
// virtual memory stressor" and "SGX-enabled jobs use the topical EPC
// stressor", parameterised "to allocate the right amount of memory for
// every job".
//
// This module models the stressor processes themselves: a stress-ng-style
// command line is parsed into a stress plan; running the plan allocates
// the requested memory (plain or enclave) and spins bogo-ops for the
// requested duration. The EPC stressor's op rate collapses under EPC
// paging — the application-level face of the 1000× degradation the
// scheduler exists to avoid.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "sgx/driver.hpp"
#include "sgx/perf_model.hpp"

namespace sgxo::workload {

class StressArgError : public DomainError {
 public:
  using DomainError::DomainError;
};

enum class StressorKind {
  kVm,   // --vm: anonymous-memory stressor (STRESS-NG original)
  kEpc,  // --epc: enclave-memory stressor (the STRESS-SGX addition)
};

[[nodiscard]] const char* to_string(StressorKind kind);

/// One stressor group from the command line: N workers of a kind with a
/// per-worker byte amount.
struct StressorSpec {
  StressorKind kind = StressorKind::kVm;
  int workers = 1;
  Bytes bytes{};
};

/// A parsed stress-sgx invocation.
struct StressPlan {
  std::vector<StressorSpec> stressors;
  /// Zero = run until stopped.
  Duration timeout{};

  [[nodiscard]] Bytes total_epc_bytes() const;
  [[nodiscard]] Bytes total_vm_bytes() const;
};

/// Parses the stress-ng-style command line used by the paper's images:
///
///   stress-sgx --vm 2 --vm-bytes 1g --timeout 60s
///   stress-sgx --epc 1 --epc-bytes 48m --timeout 300s
///
/// Sizes accept k/m/g suffixes (binary units, as stress-ng). Throws
/// StressArgError on malformed input.
[[nodiscard]] StressPlan parse_stress_args(
    const std::vector<std::string>& args);

/// Outcome of one executed stressor worker.
struct StressorReport {
  StressorKind kind = StressorKind::kVm;
  /// Iterations completed ("bogo-ops" in stress-ng terms).
  std::uint64_t bogo_ops = 0;
  /// Virtual time the worker ran.
  Duration elapsed{};
  /// Memory startup latency (enclave build for EPC workers).
  Duration startup{};

  [[nodiscard]] double ops_per_second() const {
    const double s = elapsed.as_seconds();
    return s <= 0.0 ? 0.0 : static_cast<double>(bogo_ops) / s;
  }
};

/// Executes a stress plan against a node's SGX driver (EPC workers) and
/// plain memory (vm workers), in virtual time. `pid`/`cgroup` identify
/// the containerised process to the driver. The run is synchronous: it
/// models what the container's process would have done over the plan's
/// timeout.
class StressRunner {
 public:
  StressRunner(sgx::Driver& driver, const sgx::PerfModel& perf)
      : driver_(&driver), perf_(&perf) {}

  /// Runs every worker of the plan; the plan must have a positive
  /// timeout. EPC workers may be denied by limit enforcement — the
  /// exception propagates (the container dies, as on the real system).
  [[nodiscard]] std::vector<StressorReport> run(const StressPlan& plan,
                                                sgx::Pid pid,
                                                const sgx::CgroupPath& cgroup);

 private:
  sgx::Driver* driver_;
  const sgx::PerfModel* perf_;
};

}  // namespace sgxo::workload
