#include "workload/malicious.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sgxo::workload {

cluster::PodSpec malicious_pod(const std::string& name,
                               const MaliciousConfig& config) {
  SGXO_CHECK_MSG(config.epc_fraction > 0.0 && config.epc_fraction <= 1.0,
                 "malicious EPC fraction must be in (0, 1]");
  cluster::ResourceAmounts declared;
  declared.epc_pages = Pages{1};  // the lie: 1 page requested and limited

  cluster::PodBehavior behavior;
  behavior.sgx = true;
  behavior.actual_usage = Bytes{static_cast<std::uint64_t>(std::llround(
      config.epc_fraction *
      static_cast<double>(config.epc.usable.count())))};
  behavior.duration = config.duration;

  return cluster::make_stressor_pod(name, declared, declared, behavior,
                                    config.scheduler_name);
}

std::vector<cluster::PodSpec> malicious_pods(std::size_t count,
                                             const MaliciousConfig& config,
                                             const std::string& prefix) {
  std::vector<cluster::PodSpec> pods;
  pods.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    pods.push_back(malicious_pod(prefix + "-" + std::to_string(i), config));
  }
  return pods;
}

}  // namespace sgxo::workload
