// Command-line experiment workbench: run any trace-replay configuration
// without writing code, and optionally dump per-job results as CSV.
//
//   $ ./examples/experiment_cli --sgx-fraction 0.75 --policy spread
//   $ ./examples/experiment_cli --epc-mib 64 --no-enforce --csv out.csv
//   $ ./examples/experiment_cli --sgx2 --initial-fraction 0.4
//   $ ./examples/experiment_cli --malicious 1 --squat 0.5
//   $ ./examples/experiment_cli --help
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/replay.hpp"

using namespace sgxo;

namespace {

void print_help() {
  std::cout <<
      R"(experiment_cli — replay the Borg evaluation slice on the simulated cluster

options:
  --sgx-fraction F     fraction of jobs designated SGX-enabled   [0.5]
  --policy P           binpack | spread                          [binpack]
  --default-scheduler  use the request-only Kubernetes default scheduler
  --epc-mib N          simulated usable EPC per SGX node, in MiB [93.5]
  --no-enforce         stock driver: no EPC limit enforcement
  --malicious N        N malicious squatters per SGX node        [0]
  --squat F            fraction of EPC each squatter really uses [0.5]
  --sgx2               SGX 2 cluster (dynamic enclave memory)
  --initial-fraction F SGX 2 build-time fraction of the peak     [0.4]
  --arrivals A         uniform | poisson | bursty                [uniform]
  --strict-fcfs        head-of-line-blocking queue semantics
  --migration          enable the enclave-migration defragmenter
  --seed N             RNG seed                                  [42]
  --jobs N             jobs in the slice                         [663]
  --csv PATH           write per-job outcomes as CSV
  --help               this text
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "error: " << message << "\n(use --help)\n";
  std::exit(2);
}

double parse_double(const char* flag, const char* value) {
  if (value == nullptr) fail(std::string(flag) + " needs a value");
  try {
    return std::stod(value);
  } catch (...) {
    fail(std::string(flag) + ": not a number: " + value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::ReplayOptions options;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help") {
      print_help();
      return 0;
    } else if (arg == "--sgx-fraction") {
      options.sgx_fraction = parse_double("--sgx-fraction", next);
      ++i;
    } else if (arg == "--policy") {
      if (next == nullptr) fail("--policy needs a value");
      const std::string policy = next;
      ++i;
      if (policy == "binpack") {
        options.policy = core::PlacementPolicy::kBinpack;
      } else if (policy == "spread") {
        options.policy = core::PlacementPolicy::kSpread;
      } else {
        fail("unknown policy: " + policy);
      }
    } else if (arg == "--default-scheduler") {
      options.use_default_scheduler = true;
    } else if (arg == "--epc-mib") {
      options.epc_usable_override =
          mib(parse_double("--epc-mib", next));
      ++i;
    } else if (arg == "--no-enforce") {
      options.enforce_limits = false;
    } else if (arg == "--malicious") {
      options.malicious_per_sgx_node =
          static_cast<std::size_t>(parse_double("--malicious", next));
      ++i;
    } else if (arg == "--squat") {
      options.malicious_epc_fraction = parse_double("--squat", next);
      ++i;
    } else if (arg == "--sgx2") {
      options.sgx_version = sgx::SgxVersion::kSgx2;
      if (options.initial_usage_fraction >= 1.0) {
        options.initial_usage_fraction = 0.4;
      }
    } else if (arg == "--initial-fraction") {
      options.initial_usage_fraction =
          parse_double("--initial-fraction", next);
      ++i;
    } else if (arg == "--arrivals") {
      if (next == nullptr) fail("--arrivals needs a value");
      const std::string pattern = next;
      ++i;
      if (pattern == "uniform") {
        options.trace_config.arrivals = trace::ArrivalPattern::kUniform;
      } else if (pattern == "poisson") {
        options.trace_config.arrivals = trace::ArrivalPattern::kPoisson;
      } else if (pattern == "bursty") {
        options.trace_config.arrivals = trace::ArrivalPattern::kBursty;
      } else {
        fail("unknown arrival pattern: " + pattern);
      }
    } else if (arg == "--strict-fcfs") {
      options.strict_fcfs = true;
    } else if (arg == "--migration") {
      options.enable_migration = true;
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          parse_double("--seed", next));
      options.trace_config.seed = options.seed;
      ++i;
    } else if (arg == "--jobs") {
      options.trace_config.slice_jobs =
          static_cast<std::size_t>(parse_double("--jobs", next));
      options.trace_config.over_allocating_jobs = std::min<std::size_t>(
          44, options.trace_config.slice_jobs / 15);
      ++i;
    } else if (arg == "--csv") {
      if (next == nullptr) fail("--csv needs a path");
      csv_path = next;
      ++i;
    } else {
      fail("unknown flag: " + arg);
    }
  }

  std::cout << "running replay: policy=" << core::to_string(options.policy)
            << " sgx_fraction=" << options.sgx_fraction
            << " enforce=" << (options.enforce_limits ? "on" : "off")
            << " version=" << sgx::to_string(options.sgx_version)
            << " arrivals=" << trace::to_string(options.trace_config.arrivals)
            << " ...\n";
  const exp::ReplayResult result = exp::run_replay(options);

  Table summary({"metric", "value"});
  summary.add_row({"completed", result.completed ? "yes" : "no"});
  summary.add_row({"jobs", std::to_string(result.jobs.size())});
  summary.add_row({"failed (killed)", std::to_string(result.failed_jobs)});
  summary.add_row({"capped to EPC", std::to_string(result.capped_jobs)});
  summary.add_row({"makespan", to_string(result.makespan)});
  summary.add_row({"trace useful time",
                   to_string(result.total_trace_duration)});
  const auto waits = result.waiting_seconds();
  if (!waits.empty()) {
    OnlineStats stats;
    for (const double w : waits) stats.add(w);
    const EmpiricalCdf cdf{waits};
    summary.add_row({"mean wait", fmt_double(stats.mean(), 1) + " s"});
    summary.add_row({"p50 wait", fmt_double(cdf.quantile(0.5), 1) + " s"});
    summary.add_row({"p95 wait", fmt_double(cdf.quantile(0.95), 1) + " s"});
    summary.add_row({"max wait", fmt_double(cdf.max(), 1) + " s"});
  }
  summary.add_row({"turnaround (SGX)",
                   to_string(result.total_turnaround(true))});
  summary.add_row({"turnaround (standard)",
                   to_string(result.total_turnaround(false))});
  summary.print(std::cout);

  if (!csv_path.empty()) {
    std::ofstream csv{csv_path};
    if (!csv) fail("cannot open " + csv_path);
    Table rows({"pod", "sgx", "requested_bytes", "actual_bytes",
                "trace_duration_s", "waiting_s", "turnaround_s", "failed",
                "reason"});
    for (const exp::JobOutcome& job : result.jobs) {
      rows.add_row(
          {job.pod, job.sgx ? "1" : "0",
           std::to_string(job.requested.count()),
           std::to_string(job.actual.count()),
           fmt_double(job.trace_duration.as_seconds(), 3),
           job.waiting ? fmt_double(job.waiting->as_seconds(), 3) : "",
           job.turnaround ? fmt_double(job.turnaround->as_seconds(), 3) : "",
           job.failed ? "1" : "0", job.failure_reason});
    }
    rows.print_csv(csv);
    std::cout << "\nwrote per-job outcomes to " << csv_path << '\n';
  }
  return result.completed ? 0 : 1;
}
