// Malicious-tenant walkthrough (paper §VI-F / Fig. 11).
//
// A squatter pod declares a 1-page EPC request but actually allocates half
// of its node's EPC. This example runs the same scenario twice — once with
// the stock SGX driver and once with the paper's limit-enforcing driver —
// and shows how an honest pod fares in each world.
//
//   $ ./examples/malicious_tenant
#include <iostream>

#include "common/units.hpp"
#include "exp/fixture.hpp"
#include "workload/malicious.hpp"

using namespace sgxo;
using namespace sgxo::literals;

namespace {

void run_world(bool enforce) {
  std::cout << "=== " << (enforce ? "modified driver (limits enforced)"
                                  : "stock driver (no enforcement)")
            << " ===\n";
  exp::ClusterConfig config;
  config.enforce_epc_limits = enforce;
  exp::SimulatedCluster cluster{config};
  auto& scheduler = cluster.add_sgx_scheduler(core::PlacementPolicy::kBinpack);
  cluster.api().set_default_scheduler(scheduler.name());
  cluster.start_monitoring();

  // One squatter per SGX node, each really allocating 50 % of the EPC;
  // pinned via nodeSelector so every SGX node is squatted.
  workload::MaliciousConfig mal;
  mal.epc_fraction = 0.5;
  mal.duration = Duration::hours(1);
  std::vector<cluster::NodeName> sgx_nodes;
  for (cluster::Node* node : cluster.nodes()) {
    if (node->has_sgx()) sgx_nodes.push_back(node->name());
  }
  auto squatters = workload::malicious_pods(sgx_nodes.size(), mal);
  for (std::size_t i = 0; i < squatters.size(); ++i) {
    squatters[i].node_selector = sgx_nodes[i];
    cluster.api().submit(std::move(squatters[i]));
  }

  // Let the squatters start and the probes observe their real usage...
  cluster.sim().run_until(TimePoint::epoch() + Duration::minutes(1));

  // ...then an honest pod arrives needing 60 % of one node's EPC. In the
  // stock world every node's EPC is half-squatted, so it cannot be placed;
  // in the enforced world the squatters are already dead.
  cluster::PodBehavior honest_behavior;
  honest_behavior.sgx = true;
  honest_behavior.actual_usage = mib(56.0);
  honest_behavior.duration = Duration::minutes(2);
  cluster::ResourceAmounts honest_request;
  honest_request.epc_pages = Pages::ceil_from(mib(56.0));
  cluster.api().submit(cluster::make_stressor_pod(
      "honest", honest_request, honest_request, honest_behavior));

  cluster.sim().run_until(TimePoint::epoch() + Duration::minutes(10));
  cluster.stop_all();

  for (const orch::PodRecord* record : cluster.api().all_pods()) {
    std::cout << "  " << record->spec.name << ": "
              << to_string(record->phase);
    if (!record->failure_reason.empty()) {
      std::cout << " (" << record->failure_reason << ")";
    }
    if (const auto waiting = record->waiting_time()) {
      std::cout << ", waited " << *waiting;
    }
    std::cout << '\n';
  }

  // What the driver sees on each SGX node.
  for (cluster::Node* node : cluster.nodes()) {
    if (!node->has_sgx()) continue;
    std::cout << "  " << node->name() << ": sgx_nr_free_pages="
              << node->driver()->read_module_param("sgx_nr_free_pages")
              << " / "
              << node->driver()->read_module_param("sgx_nr_total_epc_pages")
              << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  run_world(/*enforce=*/false);
  run_world(/*enforce=*/true);
  std::cout << "With the stock driver the squatters keep their stolen EPC\n"
               "and the honest pod queues behind them; the modified driver\n"
               "denies their enclave initialisation (EpcLimitExceeded) and\n"
               "the honest pod runs immediately.\n";
  return 0;
}
