// Walkthrough of the SGX trust machinery from paper §II: launch tokens,
// remote attestation, sealing — and how mutual attestation establishes
// the migration key that secures enclave live migration (§VII/related
// work, Gu et al.).
//
//   $ ./examples/remote_attestation
#include <iostream>

#include "sgx/attestation.hpp"
#include "sgx/perf_model.hpp"
#include "sgx/sdk.hpp"

using namespace sgxo;
using namespace sgxo::sgx;

int main() {
  const PerfModel perf;

  // Two SGX machines of the cluster, plus an impostor box without a
  // genuine fused key.
  const Platform sgx1 = Platform::for_node("sgx-1");
  const Platform sgx2 = Platform::for_node("sgx-2");
  const Platform impostor = Platform::for_node("rogue");

  // Each container runs its own AESM (one PSW per container, §VI-D),
  // which exposes the architectural enclaves.
  AesmService aesm1{perf, sgx1};
  AesmService aesm2{perf, sgx2};
  std::cout << "AESM startup on sgx-1: " << aesm1.start() << "\n";
  (void)aesm2.start();

  // Provisioning Enclave flow: both genuine platforms enrol with the
  // attestation service; the impostor never does.
  AttestationService ias;
  aesm1.provision_with(ias);
  aesm2.provision_with(ias);

  // 1. Launch: the application ships a signed (not encrypted) enclave;
  //    the Launch Enclave gates EINIT with a launch token.
  const Measurement app = measure_enclave("stress-sgx v1.0");
  const auto token = aesm1.launch_enclave().issue(app);
  std::cout << "launch token for MRENCLAVE " << to_hex(app.value)
            << " valid: " << std::boolalpha
            << aesm1.launch_enclave().validate(token) << "\n";

  // 2. Remote attestation: a client verifies that this exact enclave runs
  //    on a genuine platform before trusting it with secrets.
  const Quote quote = aesm1.quoting_enclave().quote(app, /*report_data=*/7);
  std::cout << "quote from sgx-1 verifies: " << ias.verify(quote) << "\n";
  QuotingEnclave rogue_qe{impostor};
  std::cout << "quote from impostor verifies: "
            << ias.verify(rogue_qe.quote(app, 7)) << "\n";

  // 3. Sealing: state persisted to disk survives restarts without a new
  //    attestation — but only on the same platform, for the same code.
  const SealedBlob blob = seal(sgx1, app, "cached launch state");
  const auto unsealed = unseal(sgx1, app, blob);
  std::cout << "sealed/unsealed on sgx-1: "
            << std::string(unsealed.begin(), unsealed.end()) << "\n";
  try {
    (void)unseal(sgx2, app, blob);
  } catch (const AttestationError& e) {
    std::cout << "unseal on sgx-2 refused: " << e.what() << "\n";
  }

  // 4. Migration key: mutual attestation between source and target
  //    platforms yields the shared key that protects an enclave
  //    checkpoint in flight.
  const Quote a = aesm1.quoting_enclave().quote(app, 1111);
  const Quote b = aesm2.quoting_enclave().quote(app, 2222);
  const HashKey migration_key = ias.establish_shared_key(a, b);
  std::cout << "migration key established: " << to_hex(migration_key.k0)
            << to_hex(migration_key.k1) << "\n";
  try {
    (void)ias.establish_shared_key(a, rogue_qe.quote(app, 3333));
  } catch (const AttestationError& e) {
    std::cout << "key exchange with impostor refused: " << e.what() << "\n";
  }
  return 0;
}
