// Replays the scaled-down Google Borg evaluation slice (§VI-B: 1-hour
// slice, every-1200th-job sampling, 663 jobs) against the paper's cluster
// with a 50 % SGX job mix, and reports the headline scheduling metrics.
//
//   $ ./examples/trace_replay [binpack|spread] [sgx_fraction]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/replay.hpp"

using namespace sgxo;

int main(int argc, char** argv) {
  exp::ReplayOptions options;
  options.sgx_fraction = 0.5;
  if (argc > 1 && std::string(argv[1]) == "spread") {
    options.policy = core::PlacementPolicy::kSpread;
  }
  if (argc > 2) {
    options.sgx_fraction = std::atof(argv[2]);
  }

  std::cout << "replaying Borg slice: policy="
            << core::to_string(options.policy)
            << ", sgx_fraction=" << options.sgx_fraction << " ...\n";
  const exp::ReplayResult result = exp::run_replay(options);

  std::cout << "completed: " << (result.completed ? "yes" : "no")
            << ", jobs=" << result.jobs.size()
            << ", failed=" << result.failed_jobs
            << ", makespan=" << result.makespan
            << ", trace useful time=" << result.total_trace_duration << "\n\n";

  Table table({"job kind", "jobs", "mean wait [s]", "p50 [s]", "p95 [s]",
               "max [s]"});
  for (const bool sgx : {false, true}) {
    const std::vector<double> waits = result.waiting_seconds(sgx);
    if (waits.empty()) continue;
    EmpiricalCdf cdf{waits};
    OnlineStats stats;
    for (const double w : waits) stats.add(w);
    table.add_row({sgx ? "SGX" : "standard", std::to_string(waits.size()),
                   fmt_double(stats.mean()), fmt_double(cdf.quantile(0.5)),
                   fmt_double(cdf.quantile(0.95)), fmt_double(cdf.max())});
  }
  table.print(std::cout);

  std::cout << "\nturnaround: standard="
            << result.total_turnaround(false)
            << ", SGX=" << result.total_turnaround(true) << '\n';
  return result.completed ? 0 : 1;
}
