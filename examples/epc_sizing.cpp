// Capacity-planning what-if: how would the cluster behave with the larger
// EPCs promised by SGX 2 (paper §VI-D / §VI-G)? Replays the Borg slice
// with 100 % SGX jobs across a sweep of simulated EPC sizes and reports
// makespan, mean waiting and queue pressure for each.
//
//   $ ./examples/epc_sizing [sizes-in-MiB...]   (default: 32 64 128 256)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/planner.hpp"
#include "exp/replay.hpp"
#include "trace/sgx_mix.hpp"

using namespace sgxo;

int main(int argc, char** argv) {
  std::vector<int> sizes{32, 64, 128, 256};
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) {
      sizes.push_back(std::atoi(argv[i]));
    }
  }

  // The analytical planner works from the workload's first moments only.
  auto jobs = trace::BorgTraceGenerator{}.evaluation_slice();
  Rng rng{42};
  trace::designate_sgx(jobs, 1.0, rng);
  const exp::WorkloadSummary summary = exp::WorkloadSummary::from_jobs(jobs);

  std::cout << "EPC sizing what-if (100% SGX jobs, binpack)\n"
               "simulated replay vs the closed-form capacity planner\n\n";
  Table table({"PRM [MiB]", "usable/node [MiB]", "sim makespan",
               "planner makespan", "planner rho", "sim mean wait [s]",
               "p95 wait [s]", "peak queue [MiB]", "capped jobs"});
  for (const int size : sizes) {
    const double usable_mib = size * 93.5 / 128.0;
    exp::ReplayOptions options;
    options.sgx_fraction = 1.0;
    options.epc_usable_override = mib(usable_mib);
    const exp::ReplayResult result = exp::run_replay(options);

    exp::ClusterCapacity cluster;
    cluster.usable_epc_per_node = mib(usable_mib);
    const exp::PlanEstimate plan = exp::estimate(summary, cluster);

    OnlineStats wait;
    for (const double w : result.waiting_seconds()) wait.add(w);
    const EmpiricalCdf cdf{result.waiting_seconds()};
    double peak = 0.0;
    for (const exp::PendingSample& s : result.pending_series) {
      peak = std::max(peak, s.epc_requested.as_mib());
    }
    table.add_row({std::to_string(size), fmt_double(usable_mib, 1),
                   to_string(result.makespan), to_string(plan.makespan),
                   fmt_double(plan.utilization, 2),
                   fmt_double(wait.mean(), 1),
                   fmt_double(cdf.quantile(0.95), 1), fmt_double(peak, 1),
                   std::to_string(result.capped_jobs)});
  }
  table.print(std::cout);
  std::cout << "\nBigger protected memory drastically reduces turnaround —\n"
               "the paper's motivation for SGX 2 support (§VI-G). The\n"
               "planner's fluid estimate tracks the simulation within ~2x\n"
               "without running it.\n";
  return 0;
}
