// Quickstart: assemble the paper's 5-machine heterogeneous cluster, start
// the monitoring pipeline and the SGX-aware binpack scheduler, submit one
// SGX-enabled pod and one standard pod, and watch them run to completion.
//
//   $ ./examples/quickstart
#include <iostream>

#include "common/units.hpp"
#include "exp/fixture.hpp"
#include "orch/describe.hpp"

using namespace sgxo;
using namespace sgxo::literals;

int main() {
  exp::SimulatedCluster cluster;

  // The SGX-aware scheduler (binpack policy) becomes the cluster default;
  // Heapster + the SGX probe DaemonSet feed its InfluxQL queries.
  auto& scheduler =
      cluster.add_sgx_scheduler(core::PlacementPolicy::kBinpack);
  cluster.api().set_default_scheduler(scheduler.name());
  cluster.start_monitoring();

  // An SGX-enabled pod: requests 4096 EPC pages (16 MiB) via the device
  // plugin's extended resource, actually allocates 16 MiB of enclave
  // memory, runs for 2 minutes.
  cluster::PodBehavior sgx_behavior;
  sgx_behavior.sgx = true;
  sgx_behavior.actual_usage = 16_MiB;
  sgx_behavior.duration = Duration::minutes(2);
  cluster::ResourceAmounts sgx_request;
  sgx_request.epc_pages = Pages{4096};
  cluster.api().submit(cluster::make_stressor_pod(
      "secure-service", sgx_request, sgx_request, sgx_behavior));

  // A standard pod: 2 GiB of regular memory for 90 seconds.
  cluster::PodBehavior std_behavior;
  std_behavior.actual_usage = 2_GiB;
  std_behavior.duration = Duration::seconds(90);
  cluster::ResourceAmounts std_request;
  std_request.memory = 2_GiB;
  cluster.api().submit(cluster::make_stressor_pod(
      "web-frontend", std_request, std_request, std_behavior));

  const bool done = cluster.run_until_quiescent(/*expected_pods=*/2,
                                                Duration::minutes(30));
  cluster.stop_all();

  std::cout << "all pods terminal: " << (done ? "yes" : "no") << "\n\n";
  for (const orch::PodRecord* record : cluster.api().all_pods()) {
    std::cout << record->spec.name << ": " << to_string(record->phase)
              << " on " << (record->node.empty() ? "<none>" : record->node);
    if (const auto waiting = record->waiting_time()) {
      std::cout << ", waited " << *waiting;
    }
    if (const auto turnaround = record->turnaround_time()) {
      std::cout << ", turnaround " << *turnaround;
    }
    std::cout << '\n';
  }

  std::cout << "\ncluster events:\n";
  for (const orch::Event& event : cluster.api().events()) {
    std::cout << "  " << event.time << "  " << event.pod << ": "
              << event.message << '\n';
  }

  std::cout << "\n$ kubectl get nodes\n";
  orch::get_nodes(cluster.api()).print(std::cout);
  std::cout << "\n$ kubectl get pods\n";
  orch::get_pods(cluster.api(), cluster.sim().now()).print(std::cout);
  std::cout << "\n$ kubectl describe pod secure-service\n"
            << orch::describe_pod(cluster.api(), "secure-service");
  return done ? 0 : 1;
}
